"""The coverage-guided differential fuzzing campaign.

One :class:`FuzzCampaign` run is a deterministic function of its
:class:`CampaignConfig`:

1. the mutation engine's archetype seeds start the in-memory corpus,
2. each round picks a corpus parent, mutates it, renders it, and runs the
   differential oracle (:func:`repro.fuzz.oracle.run_differential`;
   four-way with the default ``engine="array"``) over it
   -- fanned out across processes through the runner's generic
   :func:`~repro.runner.executor.run_tasks` when ``jobs > 1``,
3. a mutant producing any unseen coverage signature enters the corpus;
   a diverging mutant is shrunk to a minimal reproducer
   (:func:`repro.fuzz.shrink.shrink`) and, when a corpus directory is
   configured, written out as a replayable entry,
4. the campaign stops at its program budget or its wall-clock budget,
   whichever binds first, and emits a JSON-ready report.

Determinism: all randomness flows from one seeded :class:`random.Random`
held by the parent; workers are pure functions of their payload; results
are folded in submission order (see :func:`run_tasks`); the report
carries no wall-clock data.  Two runs with the same seed and the same
binding *program* budget produce byte-identical reports at any ``jobs``
level.  (Wall-clock times live in the runner manifest, not the report.)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.arch.config import MachineConfig
from repro.core import controller as controller_module
from repro.fuzz.corpus import CorpusEntry, write_entry
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.mutate import MutationEngine, ProgramSpec, render
from repro.fuzz.oracle import Divergence, run_differential
from repro.fuzz.shrink import shrink
from repro.isa.assembler import AssemblerError, assemble
from repro.runner.executor import run_tasks
from repro.runner.progress import ProgressReporter

#: Campaign report schema version.
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign run depends on."""

    seed: int = 0
    #: Mutants to execute (the deterministic budget).
    programs: int = 200
    #: Wall-clock cap in seconds (safety valve; 0 disables).
    time_budget: float = 60.0
    #: Worker processes (1 = in-process serial).
    jobs: int = 1
    iq_size: int = 32
    nblt_size: int = 8
    buffering_strategy: str = "multi"
    #: Shrink findings to minimal reproducers.
    minimize: bool = True
    #: Directory findings / interesting mutants are written to (None =
    #: in-memory only).
    corpus_dir: Optional[str] = None
    #: Predicate-evaluation budget per shrink.
    shrink_budget: int = 250
    #: Fault-injection switch forwarded to the controller (self-test).
    inject_bug: Optional[str] = None
    #: Oracle engine: ``array`` (default) runs the four-way oracle with
    #: the reuse-array leg, ``object`` the historical three-way one.
    engine: str = "array"
    #: Controller variant the reuse legs run ("loop" or "trace"; see
    #: docs/trace_reuse.md).
    reuse_mode: str = "loop"

    def machine_config(self) -> MachineConfig:
        return MachineConfig().with_iq_size(self.iq_size).replace(
            nblt_size=self.nblt_size,
            buffering_strategy=self.buffering_strategy,
            reuse_mode=self.reuse_mode)


@dataclass
class Finding:
    """One divergence the campaign found (shrunk when minimize is on)."""

    index: int
    divergence: Divergence
    source: str
    spec: Dict[str, Any]
    original_cost: int
    shrunk_cost: int
    shrink_evaluations: int = 0
    shrink_complete: bool = True
    corpus_files: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "divergence": self.divergence.to_dict(),
            "summary": self.divergence.describe(),
            "source": self.source,
            "spec": self.spec,
            "original_cost": self.original_cost,
            "shrunk_cost": self.shrunk_cost,
            "shrink_evaluations": self.shrink_evaluations,
            "shrink_complete": self.shrink_complete,
            "corpus_files": sorted(self.corpus_files),
        }


def _evaluate(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker body: assemble + differential oracle for one mutant.

    Module-level and a pure function of its payload, so it can run
    in-process or in a pool worker interchangeably.  The fault-injection
    flag is scoped to exactly this evaluation.
    """
    config = MachineConfig().with_iq_size(payload["iq_size"]).replace(
        nblt_size=payload["nblt_size"],
        buffering_strategy=payload["buffering_strategy"])
    reuse_mode = payload.get("reuse_mode", "loop")
    controller_module._INJECTED_BUG = payload.get("inject_bug")
    try:
        try:
            program = assemble(payload["source"], name=payload["name"])
        except AssemblerError as exc:
            return {"invalid": str(exc)}
        outcome = run_differential(program, config,
                                   engine=payload.get("engine", "object"),
                                   reuse_mode=reuse_mode)
    finally:
        controller_module._INJECTED_BUG = None
    return {
        "signatures": list(outcome.signatures),
        "divergence": outcome.divergence.to_dict()
        if outcome.divergence else None,
        "event_counts": dict(outcome.event_counts),
        "oracle_instructions": outcome.oracle_instructions,
    }


class FuzzCampaign:
    """Drives one coverage-guided differential fuzzing run."""

    def __init__(self, config: CampaignConfig,
                 progress: Optional[ProgressReporter] = None):
        self.config = config
        self.progress = progress or ProgressReporter(verbose=False)
        self.coverage = CoverageMap()
        self.findings: List[Finding] = []
        self.corpus_specs: List[ProgramSpec] = []
        self.history: List[int] = []
        self.executed = 0
        self.invalid = 0
        self.admitted = 0

    # -- driving -----------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Run the campaign; returns the JSON-ready report."""
        config = self.config
        rng = random.Random(config.seed)
        engine = MutationEngine(rng)
        seeds = engine.seed_specs()
        deadline = (time.monotonic() + config.time_budget
                    if config.time_budget else None)
        stopped_by = "programs"
        queue: List[ProgramSpec] = list(seeds)
        batch_size = max(config.jobs, 1)
        while self.executed < config.programs:
            if deadline is not None and time.monotonic() >= deadline:
                stopped_by = "time"
                break
            remaining = config.programs - self.executed
            batch: List[ProgramSpec] = []
            while queue and len(batch) < min(batch_size, remaining):
                batch.append(queue.pop(0))
            while len(batch) < min(batch_size, remaining):
                parent = rng.choice(self.corpus_specs) \
                    if self.corpus_specs else rng.choice(seeds)
                batch.append(engine.mutate(parent))
            payloads = [self._payload(spec, self.executed + offset)
                        for offset, spec in enumerate(batch)]
            results = run_tasks(_evaluate, payloads,
                                jobs=config.jobs,
                                progress=self.progress,
                                label="mutant")
            for spec, result in zip(batch, results):
                self._fold(spec, result)
        report = self._report(stopped_by)
        self.progress.render_summary()
        return report

    def _payload(self, spec: ProgramSpec, index: int) -> Dict[str, Any]:
        config = self.config
        return {
            "name": f"mutant-{index:05d}",
            "source": render(spec),
            "iq_size": config.iq_size,
            "nblt_size": config.nblt_size,
            "buffering_strategy": config.buffering_strategy,
            "inject_bug": config.inject_bug,
            "engine": config.engine,
            "reuse_mode": config.reuse_mode,
        }

    def _fold(self, spec: ProgramSpec, result: Any) -> None:
        """Fold one evaluation result into campaign state, in order."""
        self.executed += 1
        if isinstance(result, Exception):
            # the harness itself failed on this mutant; surface it as a
            # crash finding rather than silently dropping the program
            divergence = Divergence("harness", "crash", "",
                                    f"{type(result).__name__}: {result}",
                                    "no crash")
            self._record_finding(spec, divergence)
            self.history.append(self.coverage.cardinality)
            return
        if "invalid" in result:
            self.invalid += 1
            self.history.append(self.coverage.cardinality)
            return
        new = self.coverage.add_all(result["signatures"])
        if result["divergence"] is not None:
            self._record_finding(
                spec, Divergence.from_dict(result["divergence"]))
        elif new:
            self.corpus_specs.append(spec)
            self.admitted += 1
        self.history.append(self.coverage.cardinality)

    # -- findings ----------------------------------------------------------

    def _reproduces(self, spec: ProgramSpec) -> bool:
        """Shrink predicate: does this spec still diverge?"""
        result = _evaluate(self._payload(spec, 0))
        return result.get("divergence") is not None

    def _record_finding(self, spec: ProgramSpec,
                        divergence: Divergence) -> None:
        original_cost = spec.estimated_cost()
        evaluations = 0
        complete = True
        if self.config.minimize and divergence.mode != "harness":
            outcome = shrink(spec, self._reproduces,
                             max_evaluations=self.config.shrink_budget)
            spec = outcome.spec
            evaluations = outcome.evaluations
            complete = outcome.complete
            # re-derive the divergence from the shrunk reproducer so the
            # report describes what the corpus entry actually shows
            final = _evaluate(self._payload(spec, 0))
            if final.get("divergence") is not None:
                divergence = Divergence.from_dict(final["divergence"])
        finding = Finding(
            index=len(self.findings),
            divergence=divergence,
            source=render(spec),
            spec=spec.to_dict(),
            original_cost=original_cost,
            shrunk_cost=spec.estimated_cost(),
            shrink_evaluations=evaluations,
            shrink_complete=complete,
        )
        if self.config.corpus_dir:
            entry = CorpusEntry(
                name=f"finding-{finding.index:04d}",
                kind="divergence",
                description=divergence.describe(),
                source=finding.source,
                seed=self.config.seed,
                iq_size=self.config.iq_size,
                nblt_size=self.config.nblt_size,
                buffering_strategy=self.config.buffering_strategy,
                expect="divergence",
                spec=finding.spec,
            )
            finding.corpus_files = write_entry(self.config.corpus_dir,
                                               entry)
        self.findings.append(finding)

    # -- reporting ---------------------------------------------------------

    def _report(self, stopped_by: str) -> Dict[str, Any]:
        config = self.config
        return {
            "report_schema": REPORT_SCHEMA,
            "seed": config.seed,
            "config": {
                "programs": config.programs,
                "jobs": config.jobs,
                "iq_size": config.iq_size,
                "nblt_size": config.nblt_size,
                "buffering_strategy": config.buffering_strategy,
                "minimize": config.minimize,
                "inject_bug": config.inject_bug,
                "engine": config.engine,
                "reuse_mode": config.reuse_mode,
            },
            "stopped_by": stopped_by,
            "programs_run": self.executed,
            "invalid_programs": self.invalid,
            "corpus_admitted": self.admitted,
            "coverage": {
                "cardinality": self.coverage.cardinality,
                "history": list(self.history),
                "signatures": self.coverage.signatures(),
            },
            "findings": [finding.to_dict()
                         for finding in self.findings],
            "unshrunk_findings": sum(
                1 for finding in self.findings
                if not finding.shrink_complete),
        }
