"""The replayable regression corpus.

A corpus entry is a pair of files in one directory:

``<name>.s``
    The assembly source of a minimized reproducer.

``<name>.json``
    A manifest: schema version, the campaign seed that produced it, the
    machine configuration it must replay under, what kind of entry it is
    (``regression`` -- a pinned historical near-miss that must keep
    matching; ``divergence`` -- a live finding awaiting a fix;
    ``coverage`` -- a mutant kept for the signatures it exercises), a
    human description, optional minimum controller-event counts the
    replay must reach, and (when the entry came from the mutation engine)
    the structured spec so future campaigns can keep mutating it.

``tests/test_corpus_replay.py`` replays every entry under ``tests/corpus``
through the three-way oracle as parametrized tier-1 tests, so each
reproducer stays a permanent, deterministic regression test.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.arch.config import MachineConfig

#: Manifest schema version (bump on incompatible layout changes).
SCHEMA_VERSION = 1

#: Allowed entry kinds.
ENTRY_KINDS = ("regression", "divergence", "coverage")


@dataclass
class CorpusEntry:
    """One replayable corpus entry (manifest + source)."""

    name: str
    kind: str
    description: str
    source: str
    seed: int = 0
    iq_size: int = 32
    nblt_size: int = 8
    buffering_strategy: str = "multi"
    #: ``match``: the three-way oracle must agree.  ``divergence``: the
    #: entry reproduces a live bug (never placed under ``tests/corpus``).
    expect: str = "match"
    #: Controller-event floors the reuse run must reach on replay
    #: (e.g. ``{"promote": 1}`` pins that the loop actually promotes).
    min_events: Dict[str, int] = field(default_factory=dict)
    #: Structured spec for re-seeding campaigns (optional).
    spec: Optional[Dict[str, Any]] = None

    def machine_config(self) -> MachineConfig:
        """The configuration this entry replays under."""
        return MachineConfig().with_iq_size(self.iq_size).replace(
            nblt_size=self.nblt_size,
            buffering_strategy=self.buffering_strategy)

    def to_manifest(self) -> Dict[str, Any]:
        manifest: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "seed": self.seed,
            "config": {
                "iq_size": self.iq_size,
                "nblt_size": self.nblt_size,
                "buffering_strategy": self.buffering_strategy,
            },
            "expect": self.expect,
            "source_file": f"{self.name}.s",
        }
        if self.min_events:
            manifest["min_events"] = dict(sorted(self.min_events.items()))
        if self.spec is not None:
            manifest["spec"] = self.spec
        return manifest


class CorpusError(Exception):
    """A corpus entry is malformed or unreadable."""


def write_entry(directory: str, entry: CorpusEntry) -> List[str]:
    """Write one entry; returns the two file paths created."""
    if entry.kind not in ENTRY_KINDS:
        raise CorpusError(f"unknown corpus entry kind {entry.kind!r}")
    os.makedirs(directory, exist_ok=True)
    source_path = os.path.join(directory, f"{entry.name}.s")
    manifest_path = os.path.join(directory, f"{entry.name}.json")
    with open(source_path, "w", encoding="utf-8") as handle:
        handle.write(entry.source)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(entry.to_manifest(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return [source_path, manifest_path]


def load_entry(manifest_path: str) -> CorpusEntry:
    """Load one entry from its manifest path."""
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CorpusError(f"cannot read {manifest_path}: {exc}")
    for key in ("schema", "name", "kind", "config", "source_file"):
        if key not in manifest:
            raise CorpusError(f"{manifest_path}: missing {key!r}")
    if manifest["schema"] != SCHEMA_VERSION:
        raise CorpusError(
            f"{manifest_path}: schema {manifest['schema']} != "
            f"{SCHEMA_VERSION}")
    if manifest["kind"] not in ENTRY_KINDS:
        raise CorpusError(
            f"{manifest_path}: unknown kind {manifest['kind']!r}")
    directory = os.path.dirname(manifest_path)
    source_path = os.path.join(directory, manifest["source_file"])
    try:
        with open(source_path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise CorpusError(f"cannot read {source_path}: {exc}")
    config = manifest["config"]
    return CorpusEntry(
        name=manifest["name"],
        kind=manifest["kind"],
        description=manifest.get("description", ""),
        source=source,
        seed=manifest.get("seed", 0),
        iq_size=config.get("iq_size", 32),
        nblt_size=config.get("nblt_size", 8),
        buffering_strategy=config.get("buffering_strategy", "multi"),
        expect=manifest.get("expect", "match"),
        min_events=dict(manifest.get("min_events", {})),
        spec=manifest.get("spec"),
    )


def load_corpus(directory: str) -> List[CorpusEntry]:
    """Load every entry in a corpus directory, sorted by name."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for filename in sorted(os.listdir(directory)):
        if filename.endswith(".json"):
            entries.append(load_entry(os.path.join(directory, filename)))
    return entries
