"""Persistent on-disk simulation result cache.

One JSON file per job key under a cache directory.  The payload inside is
the :class:`~repro.power.activity.ActivityRecord` of the timing run --
never derived energies -- versioned by
:data:`repro.sim.export.SCHEMA_VERSION` plus the package version, so one
entry serves every power parameterization (clocking styles, calibration
sweeps) of its (program, config) pair.  The store is corruption-tolerant
by design: an unreadable, truncated or stale-versioned entry is *evicted
and re-run*, never an error -- a cache must never be able to fail a
reproduction run.

Layout::

    <cache_dir>/
        <job key>.json      one entry per (program, config) timing run

Writes are atomic (temp file + ``os.replace``) so a killed run cannot
leave a half-written entry that later parses as garbage.

Entries written before the params-free keying (schema 2 and earlier)
carried full results under params-dependent keys; those keys are never
probed again, so :meth:`ResultCache.purge_stale` sweeps the directory for
old-schema files once per cache instance and deletes them silently.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Optional

from repro import __version__
from repro.power.activity import ActivityRecord
from repro.sim.export import SCHEMA_VERSION

from repro.runner.jobs import SimJob, job_to_dict

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """Resolve the default cache directory.

    Order: ``$REPRO_CACHE_DIR``, then ``$XDG_CACHE_HOME/repro-sim``, then
    ``~/.cache/repro-sim``.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg).expanduser() if xdg \
        else pathlib.Path.home() / ".cache"
    return base / "repro-sim"


class ResultCache:
    """Schema-versioned, corruption-tolerant activity-record store."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        self.evictions = 0
        self._purged = False

    def path_for(self, key: str) -> pathlib.Path:
        """Path of the entry file for one job key."""
        return self.cache_dir / f"{key}.json"

    def load(self, key: str) -> Optional[ActivityRecord]:
        """The cached timing record for ``key``, or None on miss/stale.

        Any unreadable or version-mismatched entry is deleted so the next
        store starts clean; nothing a cache file contains can raise out of
        here.
        """
        self.purge_stale()
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, RecursionError):
            # unreadable, truncated, malformed or pathologically nested
            self._evict(path)
            return None
        try:
            if entry["schema"] != SCHEMA_VERSION:
                raise ValueError("stale schema version")
            if entry["repro_version"] != __version__:
                raise ValueError("written by a different repro version")
            return ActivityRecord.from_payload(entry["record"])
        except Exception:
            # nothing a cache file contains may raise out of load():
            # whatever shape the entry is in, it is evicted and re-run
            self._evict(path)
            return None

    def store(self, key: str, job: SimJob,
              record: ActivityRecord) -> None:
        """Persist one timing record atomically; I/O errors are non-fatal."""
        self.purge_stale()
        entry = {
            "schema": SCHEMA_VERSION,
            "repro_version": __version__,
            "key": key,
            "job": job_to_dict(job),
            "record": record.to_payload(),
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".tmp-", suffix=".json")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, self.path_for(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # a read-only or full cache directory degrades to "no cache"
            pass

    def purge_stale(self) -> int:
        """Delete every entry written under a different payload schema.

        Pre-schema-3 entries were keyed on the power parameters as well,
        so their keys are never probed again and :meth:`load` alone would
        leave them orphaned on disk forever.  Runs once per cache
        instance (subsequent calls are free); returns the number of files
        removed.  Unreadable files are left for :meth:`load` to evict if
        their key is ever probed.
        """
        if self._purged:
            return 0
        self._purged = True
        removed = 0
        try:
            entries = list(self.cache_dir.glob("*.json"))
        except OSError:
            return 0
        for path in entries:
            try:
                with open(path, encoding="utf-8") as handle:
                    schema = json.load(handle).get("schema")
            except (OSError, ValueError, AttributeError):
                continue
            if schema != SCHEMA_VERSION:
                self._evict(path)
                removed += 1
        return removed

    def stats(self) -> dict:
        """Point-in-time inventory of the store (``repro cache stats``).

        Counts only current-schema ``.json`` entries; a missing directory
        reads as an empty cache.  Never raises.
        """
        entries = 0
        total_bytes = 0
        try:
            for path in self.cache_dir.glob("*.json"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        except OSError:
            pass
        return {
            "directory": str(self.cache_dir),
            "schema": SCHEMA_VERSION,
            "entries": entries,
            "bytes": total_bytes,
            "evictions": self.evictions,
        }

    def _evict(self, path: pathlib.Path) -> None:
        self.evictions += 1
        try:
            path.unlink()
        except OSError:
            pass
