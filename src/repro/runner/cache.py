"""Persistent on-disk simulation result cache.

One JSON file per job key under a cache directory; the payload inside is
the round-trip export from :mod:`repro.sim.export` and is versioned by
:data:`repro.sim.export.SCHEMA_VERSION` plus the package version.  The
store is corruption-tolerant by design: an unreadable, truncated or
stale-versioned entry is *evicted and re-run*, never an error -- a cache
must never be able to fail a reproduction run.

Layout::

    <cache_dir>/
        <job key>.json      one entry per (program, config, params)

Writes are atomic (temp file + ``os.replace``) so a killed run cannot
leave a half-written entry that later parses as garbage.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Optional

from repro import __version__
from repro.arch.config import MachineConfig
from repro.sim.export import (
    SCHEMA_VERSION,
    result_from_payload,
    result_to_payload,
)
from repro.sim.results import SimulationResult

from repro.runner.jobs import SimJob, job_to_dict

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """Resolve the default cache directory.

    Order: ``$REPRO_CACHE_DIR``, then ``$XDG_CACHE_HOME/repro-sim``, then
    ``~/.cache/repro-sim``.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg).expanduser() if xdg \
        else pathlib.Path.home() / ".cache"
    return base / "repro-sim"


class ResultCache:
    """Schema-versioned, corruption-tolerant result store."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        self.evictions = 0

    def path_for(self, key: str) -> pathlib.Path:
        """Path of the entry file for one job key."""
        return self.cache_dir / f"{key}.json"

    def load(self, key: str,
             config: MachineConfig) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None on miss/stale/corrupt.

        Any unreadable or version-mismatched entry is deleted so the next
        store starts clean; nothing a cache file contains can raise out of
        here.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._evict(path)
            return None
        try:
            if entry["schema"] != SCHEMA_VERSION:
                raise ValueError("stale schema version")
            if entry["repro_version"] != __version__:
                raise ValueError("written by a different repro version")
            return result_from_payload(entry["result"], config)
        except (KeyError, TypeError, ValueError, AttributeError):
            self._evict(path)
            return None

    def store(self, key: str, job: SimJob,
              result: SimulationResult) -> None:
        """Persist one result atomically; I/O errors are non-fatal."""
        entry = {
            "schema": SCHEMA_VERSION,
            "repro_version": __version__,
            "key": key,
            "job": job_to_dict(job),
            "result": result_to_payload(result),
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".tmp-", suffix=".json")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, self.path_for(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # a read-only or full cache directory degrades to "no cache"
            pass

    def _evict(self, path: pathlib.Path) -> None:
        self.evictions += 1
        try:
            path.unlink()
        except OSError:
            pass
