"""Parallel experiment-runner subsystem.

The execution layer between the paper's experiment definitions
(:mod:`repro.sim.experiments`) and the simulator: declarative job specs,
a persistent content-addressed result cache, a process-pool executor with
serial fallback, and structured progress reporting.

=====================================  =================================
:mod:`repro.runner.jobs`               :class:`SimJob` spec + content-
                                       hash cache keys
:mod:`repro.runner.cache`              on-disk schema-versioned
                                       :class:`ResultCache`
:mod:`repro.runner.executor`           :class:`JobExecutor` fan-out /
                                       fallback engine
:mod:`repro.runner.progress`           :class:`ProgressReporter` events
                                       and run manifests
=====================================  =================================

:func:`build_runner` is the one-call constructor the CLI, the scripts and
the benchmark harness share.
"""

from __future__ import annotations

from typing import Optional

from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runner.executor import (
    JobExecutor,
    default_job_count,
    execute_job,
    run_tasks,
    worker_suite,
)
from repro.runner.jobs import SimJob, job_key
from repro.runner.progress import ProgressReporter, RunEvent

__all__ = [
    "SimJob",
    "job_key",
    "ResultCache",
    "default_cache_dir",
    "CACHE_DIR_ENV",
    "JobExecutor",
    "default_job_count",
    "execute_job",
    "run_tasks",
    "ProgressReporter",
    "RunEvent",
    "build_runner",
    "worker_suite",
]


def build_runner(jobs: int = 1,
                 cache_dir=None,
                 no_cache: bool = False,
                 timeout: Optional[float] = None,
                 verbose: bool = False,
                 progress: Optional[ProgressReporter] = None,
                 **runner_kwargs):
    """Construct an :class:`~repro.sim.experiments.ExperimentRunner`
    backed by this subsystem.

    Parameters mirror the CLI flags: ``jobs`` (0 = one worker per CPU),
    ``cache_dir`` (None = the default directory), ``no_cache`` (disable
    the persistent store entirely), ``timeout`` (per-job seconds before
    the pool is declared stalled), ``verbose`` (render progress events to
    stderr).  Extra keyword arguments (``benchmarks``, ``iq_sizes``, ...)
    pass through to the :class:`ExperimentRunner` constructor.
    """
    # imported here: repro.sim.experiments imports this package's modules
    from repro.sim.experiments import ExperimentRunner
    from repro.workloads.suite import WorkloadSuite

    reporter = progress or ProgressReporter(verbose=verbose)
    cache = None if no_cache else ResultCache(cache_dir)
    suite = runner_kwargs.pop("suite", None) or WorkloadSuite()
    executor = JobExecutor(jobs=jobs, cache=cache, timeout=timeout,
                           progress=reporter, suite=suite)
    return ExperimentRunner(suite=suite, executor=executor,
                            **runner_kwargs)
