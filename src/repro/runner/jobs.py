"""Declarative simulation job specifications.

A :class:`SimJob` names everything one simulation depends on -- the
benchmark, the frozen :class:`~repro.arch.config.MachineConfig`, the
compiler-optimization flag and the power parameters -- without holding any
live state, so it can be hashed, pickled to a worker process, and used as
a key into the persistent result cache.

The cache key (:func:`job_key`) is a content hash of the *timing inputs
only*: the full machine configuration and the bytes of the program itself
(disassembly listing plus data image), so editing a kernel or a config
knob automatically misses the cache instead of serving a stale result.
The power parameters are deliberately **not** part of the key -- power is
post-hoc arithmetic over the cached activity record, so jobs differing
only in params share one timing simulation (see ``docs/activity.md``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.arch.config import MachineConfig
from repro.isa.program import Program
from repro.power.params import DEFAULT_PARAMS, PowerParams


@dataclass(frozen=True)
class SimJob:
    """One simulation to run: program + configuration + power params."""

    #: Table 2 benchmark name (resolved through the workload suite).
    benchmark: str
    #: Full machine configuration, including ``reuse_enabled``.
    config: MachineConfig
    #: Use the loop-distributed (Section 4) variant of the kernel.
    optimize: bool = False
    #: Power-model parameters (evaluation-time only; never part of the
    #: cache key, so any params variant reuses the same timing run).
    params: PowerParams = field(default=DEFAULT_PARAMS)
    #: Pipeline-core engine the timing run executes on (``object`` or
    #: ``array``; see :data:`repro.sim.simulator.ENGINES`).  Part of the
    #: cache key: the engines are proven bit-exact, but a cached record
    #: must always say which core actually produced it, so an engine
    #: bug can never hide behind the other engine's cache entries.
    engine: str = "object"

    def describe(self) -> str:
        """Short human-readable label for progress lines."""
        mode = "reuse" if self.config.reuse_enabled else "base"
        opt = " opt" if self.optimize else ""
        extras = []
        if self.engine != "object":
            extras.append(self.engine)
        if self.config.reuse_enabled and self.config.reuse_mode != "loop":
            extras.append(self.config.reuse_mode)
        if self.config.nblt_size != 8:
            extras.append(f"nblt={self.config.nblt_size}")
        if self.config.buffering_strategy != "multi":
            extras.append(self.config.buffering_strategy)
        suffix = (" " + " ".join(extras)) if extras else ""
        return (f"{self.benchmark} iq={self.config.iq_size} "
                f"{mode}{opt}{suffix}")


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_digest(config: MachineConfig) -> str:
    """Stable hash of every field of a machine configuration."""
    return _digest(json.dumps(dataclasses.asdict(config), sort_keys=True))


def program_digest(program: Program) -> str:
    """Content hash of an assembled program.

    Digests the disassembly listing (text segment plus labels) and the
    data image.  The binary instruction encoding is deliberately not used:
    some calibrated kernels carry immediates outside the encodable range.
    """
    sha = hashlib.sha256()
    sha.update(program.listing().encode("utf-8"))
    for address, data in sorted(program.data_segments):
        sha.update(address.to_bytes(8, "little"))
        sha.update(data)
    return sha.hexdigest()


def job_key(job: SimJob, program: Program) -> str:
    """Deterministic cache key for one job's *timing run*.

    Folds the benchmark name, the optimize flag, the program bytes and
    the machine configuration into one digest, so any change to any
    timing input re-simulates instead of hitting a stale entry.  The
    power parameters are excluded on purpose: the cached artifact is an
    activity record, valid under every parameterization, so jobs
    differing only in params collapse onto one key.  The engine *is*
    included -- array and object runs never share cache entries, even
    though they are bit-exact by construction (schema 4).
    """
    sha = hashlib.sha256()
    for part in (job.benchmark, "opt" if job.optimize else "orig",
                 job.engine,
                 program_digest(program), config_digest(job.config)):
        sha.update(part.encode("utf-8"))
        sha.update(b"\0")
    return sha.hexdigest()[:40]


def job_to_dict(job: SimJob) -> Dict[str, Any]:
    """Reporting export of a job spec (for cache entries / manifests)."""
    return {
        "benchmark": job.benchmark,
        "optimize": job.optimize,
        "engine": job.engine,
        "iq_size": job.config.iq_size,
        "reuse_enabled": job.config.reuse_enabled,
        "reuse_mode": job.config.reuse_mode,
        "buffering_strategy": job.config.buffering_strategy,
        "nblt_size": job.config.nblt_size,
        "config_digest": config_digest(job.config),
    }
