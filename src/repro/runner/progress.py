"""Structured progress events for experiment runs.

The executor emits one :class:`RunEvent` per state change of every job --
``queued``, ``cache-hit``, ``started``, ``done``, ``failed``, ``retry``
and ``fallback`` -- and the :class:`ProgressReporter` renders them to
stderr (stdout is reserved for the tables, which must stay byte-identical
regardless of parallelism or caching) while accumulating a machine-
readable *run manifest*: every event plus a summary with wall time and
cache hit rate, exportable as JSON for dashboards and regression tracking.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO

#: Event kinds emitted by the executor, in lifecycle order.
EVENT_KINDS = ("queued", "cache-hit", "started", "done", "failed",
               "retry", "fallback")


@dataclass
class RunEvent:
    """One state change of one job (or of the run itself)."""

    kind: str
    job: str = ""
    key: str = ""
    wall_time: Optional[float] = None
    detail: str = ""
    timestamp: float = field(default_factory=time.time)

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": self.kind,
            "timestamp": self.timestamp,
        }
        if self.job:
            record["job"] = self.job
        if self.key:
            record["key"] = self.key
        if self.wall_time is not None:
            record["wall_time"] = round(self.wall_time, 6)
        if self.detail:
            record["detail"] = self.detail
        return record


class ProgressReporter:
    """Collects run events; optionally renders them to a stream."""

    def __init__(self, stream: Optional[TextIO] = None,
                 verbose: bool = False):
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self.events: List[RunEvent] = []
        self._start = time.time()

    # -- event intake ------------------------------------------------------

    def emit(self, kind: str, job: str = "", key: str = "",
             wall_time: Optional[float] = None, detail: str = "") -> None:
        """Record one event and, when verbose, render it."""
        event = RunEvent(kind=kind, job=job, key=key,
                         wall_time=wall_time, detail=detail)
        self.events.append(event)
        if self.verbose and kind != "queued":
            self._render(event)

    def _render(self, event: RunEvent) -> None:
        parts = [f"[runner] {event.kind:9s}"]
        if event.job:
            parts.append(f"{event.job:30s}")
        if event.wall_time is not None:
            parts.append(f"{event.wall_time:6.2f}s")
        if event.detail:
            parts.append(f"({event.detail})")
        print("  ".join(parts).rstrip(), file=self.stream)
        self.stream.flush()

    # -- aggregation -------------------------------------------------------

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return sum(1 for event in self.events if event.kind == kind)

    def summary(self) -> Dict[str, Any]:
        """Aggregate counts: jobs, hits, hit rate, wall time."""
        queued = self.count("queued")
        hits = self.count("cache-hit")
        simulated = self.count("done")
        resolved = hits + simulated
        return {
            "jobs": queued,
            "cache_hits": hits,
            "simulated": simulated,
            "failed": self.count("failed"),
            "retries": self.count("retry"),
            "hit_rate": hits / resolved if resolved else 0.0,
            "wall_time": round(time.time() - self._start, 3),
        }

    def render_summary(self) -> None:
        """One-line human summary on the progress stream."""
        if not self.verbose or not self.events:
            return
        s = self.summary()
        print(f"[runner] {s['jobs']} jobs: {s['cache_hits']} cache hits "
              f"({s['hit_rate']:.0%}), {s['simulated']} simulated, "
              f"{s['failed']} failed, wall {s['wall_time']:.1f}s",
              file=self.stream)
        self.stream.flush()

    # -- manifest ----------------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        """The full run manifest (summary + every event)."""
        return {
            "summary": self.summary(),
            "events": [event.as_dict() for event in self.events],
        }

    def write_manifest(self, path) -> None:
        """Serialise the manifest to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.manifest(), handle, indent=2, sort_keys=True)
            handle.write("\n")
