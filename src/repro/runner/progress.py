"""Structured progress events for experiment runs.

The executor emits one :class:`RunEvent` per state change of every job --
``queued``, ``cache-hit``, ``started``, ``done``, ``failed``, ``retry``
and ``fallback`` -- and the :class:`ProgressReporter` renders them to
stderr (stdout is reserved for the tables, which must stay byte-identical
regardless of parallelism or caching) while accumulating a machine-
readable *run manifest*: every event plus a summary with wall time and
cache hit rate, exportable as JSON for dashboards and regression tracking.

Event timestamps use :func:`time.monotonic` so intervals between events
are immune to wall-clock steps (NTP slews, suspend/resume); the manifest
carries one ``started_at`` epoch timestamp for anchoring the run in
calendar time.  The reporter also feeds every event through a telemetry
:class:`~repro.telemetry.metrics.MetricRegistry`
(``runner_events_total`` counter per kind, ``runner_job_seconds``
histogram of job wall times), embedded in the manifest under
``metrics``.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO

from repro.telemetry.metrics import MetricRegistry

#: Event kinds emitted by the executor, in lifecycle order.
EVENT_KINDS = ("queued", "cache-hit", "cache-miss", "started", "done",
               "failed", "retry", "fallback")


@dataclass
class RunEvent:
    """One state change of one job (or of the run itself).

    ``timestamp`` is a :func:`time.monotonic` reading: meaningful only
    relative to other events of the same process, never as an epoch.
    """

    kind: str
    job: str = ""
    key: str = ""
    wall_time: Optional[float] = None
    detail: str = ""
    timestamp: float = field(default_factory=time.monotonic)

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": self.kind,
            "timestamp": self.timestamp,
        }
        if self.job:
            record["job"] = self.job
        if self.key:
            record["key"] = self.key
        if self.wall_time is not None:
            record["wall_time"] = round(self.wall_time, 6)
        if self.detail:
            record["detail"] = self.detail
        return record


class ProgressReporter:
    """Collects run events; optionally renders them to a stream."""

    def __init__(self, stream: Optional[TextIO] = None,
                 verbose: bool = False):
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self.events: List[RunEvent] = []
        self.metrics = MetricRegistry()
        self._start = time.monotonic()
        self._started_at = time.time()

    # -- event intake ------------------------------------------------------

    def emit(self, kind: str, job: str = "", key: str = "",
             wall_time: Optional[float] = None, detail: str = "") -> None:
        """Record one event and, when verbose, render it."""
        event = RunEvent(kind=kind, job=job, key=key,
                         wall_time=wall_time, detail=detail)
        self.events.append(event)
        self.metrics.counter(
            "runner_events_total",
            help="progress events emitted by the executor").inc(kind=kind)
        if wall_time is not None and kind == "done":
            self.metrics.histogram(
                "runner_job_seconds", unit="seconds",
                help="wall time of simulated (non-cached) jobs").observe(
                wall_time)
        if self.verbose and kind != "queued":
            self._render(event)

    def _render(self, event: RunEvent) -> None:
        parts = [f"[runner] {event.kind:9s}"]
        if event.job:
            parts.append(f"{event.job:30s}")
        if event.wall_time is not None:
            parts.append(f"{event.wall_time:6.2f}s")
        if event.detail:
            parts.append(f"({event.detail})")
        print("  ".join(parts).rstrip(), file=self.stream)
        self.stream.flush()

    # -- aggregation -------------------------------------------------------

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return self.metrics.counter("runner_events_total").value(kind=kind)

    def summary(self) -> Dict[str, Any]:
        """Aggregate counts: jobs, hits/misses, hit rate, wall times."""
        queued = self.count("queued")
        hits = self.count("cache-hit")
        simulated = self.count("done")
        resolved = hits + simulated
        job_seconds = self.metrics.histogram("runner_job_seconds")
        evictions = self.metrics.gauge("runner_cache_evictions")
        return {
            "jobs": queued,
            "cache_hits": hits,
            # misses are counted per timing-run *group* (the unit that
            # probes the cache), so hits + misses need not equal jobs:
            # params variants collapse onto one probed key
            "cache_misses": self.count("cache-miss"),
            "cache_evictions": int(evictions.value()),
            "simulated": simulated,
            "failed": self.count("failed"),
            "retries": self.count("retry"),
            "hit_rate": hits / resolved if resolved else 0.0,
            "wall_time": round(time.monotonic() - self._start, 3),
            "job_wall_time": round(job_seconds.sum(), 6),
            "started_at": self._started_at,
        }

    def render_summary(self) -> None:
        """One-line human summary on the progress stream."""
        if not self.verbose or not self.events:
            return
        s = self.summary()
        print(f"[runner] {s['jobs']} jobs: {s['cache_hits']} cache hits "
              f"({s['hit_rate']:.0%}), {s['simulated']} simulated, "
              f"{s['failed']} failed, wall {s['wall_time']:.1f}s",
              file=self.stream)
        self.stream.flush()

    # -- manifest ----------------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        """The full run manifest (summary + events + metric snapshot)."""
        return {
            "summary": self.summary(),
            "events": [event.as_dict() for event in self.events],
            "metrics": self.metrics.snapshot(),
        }

    def write_manifest(self, path) -> None:
        """Serialise the manifest to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.manifest(), handle, indent=2, sort_keys=True)
            handle.write("\n")
