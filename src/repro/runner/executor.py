"""Parallel simulation executor.

:class:`JobExecutor` resolves a batch of :class:`~repro.runner.jobs.SimJob`
specs to :class:`~repro.sim.results.SimulationResult` objects:

1. group the batch by timing cache key -- jobs differing only in power
   parameters share one key, hence one simulation -- and probe the
   persistent cache,
2. fan the missing *timing runs* out over a ``ProcessPoolExecutor``
   (``jobs`` workers); workers return activity-record payloads,
3. on stalls (no job completes within the per-job timeout), pool
   breakage or pool start failure, fall back to in-process serial
   execution with a bounded number of retry rounds,
4. cost every job's result from its group's record under that job's own
   params (:func:`~repro.sim.simulator.evaluate_power`), emitting
   structured progress events throughout.

Every result -- parallel, serial or cached -- is derived from the same
activity-record payload, so the three paths are guaranteed to produce
byte-identical downstream tables (simulations are deterministic and JSON
preserves floats exactly).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.power.activity import ActivityRecord
from repro.sim.results import SimulationResult
from repro.sim.simulator import evaluate_power, run_timing
from repro.telemetry.log import get_logger
from repro.workloads.suite import WorkloadSuite

from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob, job_key
from repro.runner.progress import ProgressReporter

_log = get_logger("runner.executor")

#: Per-worker workload suite so repeated jobs in one process reuse the
#: compiled programs (with the default fork start method the parent's
#: already-compiled suite is inherited for free).
_WORKER_SUITE: Optional[WorkloadSuite] = None


def _worker_suite() -> WorkloadSuite:
    global _WORKER_SUITE
    if _WORKER_SUITE is None:
        _WORKER_SUITE = WorkloadSuite()
    return _WORKER_SUITE


def worker_suite() -> WorkloadSuite:
    """The process-wide shared workload suite.

    Parents that compile programs through this instance (the service's
    key computation does) hand fork-started pool workers the compiled
    suite for free.
    """
    return _worker_suite()


def execute_job(job: SimJob) -> dict:
    """Run one job's timing simulation; returns the record payload.

    Module-level so it can be pickled to pool workers; also the serial
    path, so both paths share one code path and one result format.  The
    job's power params play no part here -- power is evaluated by the
    parent from the returned activity record.
    """
    program = _worker_suite().program(job.benchmark, optimize=job.optimize)
    record = run_timing(program, job.config, engine=job.engine)
    return record.to_payload()


#: Sampling density of traced simulations: the occupancy series is
#: strided (the trace stays bounded) while state intervals and stage
#: spans remain exact.
TRACED_STRIDE = 16


def execute_job_traced(job: SimJob) -> dict:
    """Like :func:`execute_job`, but with a telemetry session attached.

    Used by the service's worker lanes for jobs carrying a trace id:
    returns ``{"record": <activity payload>, "trace": <Chrome trace
    events>}`` so the parent can store the record exactly as the
    untraced path would *and* splice the simulation's stage spans into
    the request's exported timeline.  Module-level and picklable, like
    its untraced sibling.
    """
    from repro.telemetry import TelemetrySession

    session = TelemetrySession(stride=TRACED_STRIDE, stages=True)
    program = _worker_suite().program(job.benchmark, optimize=job.optimize)
    record = run_timing(program, job.config, engine=job.engine,
                        telemetry=session)
    return {
        "record": record.to_payload(),
        "trace": session.build_timeline()["traceEvents"],
    }


def default_job_count() -> int:
    """Worker count when the caller asks for ``--jobs 0`` (auto)."""
    return max(os.cpu_count() or 1, 1)


def run_tasks(fn, payloads: Sequence,
              jobs: int = 1,
              timeout: Optional[float] = None,
              progress: Optional[ProgressReporter] = None,
              label: str = "task",
              force_pool: bool = False,
              serial_fallback: bool = True) -> List:
    """Generic deterministic process fan-out with serial fallback.

    Runs ``fn(payload)`` for every payload and returns the results **in
    submission order** regardless of completion order, so callers that
    fold results into evolving state (the fuzzing campaign's coverage map
    and corpus) behave identically at any ``--jobs`` level.  ``fn`` must
    be a picklable module-level function of one picklable argument.

    Semantics mirror :class:`JobExecutor`'s simulation path: pool start
    failure, pool breakage and per-task stalls degrade to in-process
    serial execution, and every state change is emitted through the
    shared :class:`~repro.runner.progress.ProgressReporter` event
    vocabulary.  A task whose function raises (in a worker *or* serially)
    contributes its exception object in place of a result -- the caller
    decides whether that is fatal.

    Two knobs exist for callers that need child-process *isolation*
    rather than throughput (the simulation service's worker lanes run
    one job at a time but must survive a wedged or crashing simulation):

    * ``force_pool`` uses the process pool even for a single payload /
      single worker, so ``fn`` runs out-of-process;
    * ``serial_fallback=False`` converts pool-leg failures (worker
      exception, per-task stall, pool breakage) into exception results
      instead of re-running the task in the calling process -- a task
      that timed out once must *fail*, not hang the caller's thread.
    """
    reporter = progress or ProgressReporter(verbose=False)
    results: List = [None] * len(payloads)
    workers = (jobs if jobs else default_job_count())
    pending = list(range(len(payloads)))
    pooled = bool(pending) and (force_pool
                                or (workers > 1 and len(pending) > 1))
    if pooled:
        pending = _run_tasks_parallel(fn, payloads, pending, results,
                                      workers, timeout, reporter, label)
    if pooled and not serial_fallback:
        for index in pending:
            if not isinstance(results[index], Exception):
                results[index] = TimeoutError(
                    f"{label} #{index} did not complete in the worker "
                    f"pool (timeout {timeout}s)")
                _log.warning("task-timeout", label=label, index=index,
                             timeout=timeout)
        return results
    if pooled and pending:
        _log.warning("serial-fallback", label=label,
                     tasks=len(pending))
    for index in pending:
        reporter.emit("started", job=f"{label} #{index}")
        start = time.time()
        try:
            results[index] = fn(payloads[index])
        except Exception as exc:
            reporter.emit("failed", job=f"{label} #{index}",
                          detail=str(exc))
            results[index] = exc
            continue
        reporter.emit("done", job=f"{label} #{index}",
                      wall_time=time.time() - start)
    return results


def _run_tasks_parallel(fn, payloads: Sequence, pending: List[int],
                        results: List, workers: int,
                        timeout: Optional[float],
                        reporter: ProgressReporter,
                        label: str) -> List[int]:
    """Pool leg of :func:`run_tasks`; returns indices still unresolved."""
    try:
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(pending)))
    except (OSError, ValueError, ImportError) as exc:
        reporter.emit("fallback",
                      detail=f"process pool unavailable: {exc}")
        return pending
    failed: List[int] = []
    try:
        starts = {}
        futures = {}
        for index in pending:
            reporter.emit("started", job=f"{label} #{index}")
            starts[index] = time.time()
            futures[pool.submit(fn, payloads[index])] = index
        remaining = dict(futures)
        while remaining:
            done, _ = concurrent.futures.wait(
                remaining, timeout=timeout,
                return_when=concurrent.futures.FIRST_COMPLETED)
            if not done:
                for index in remaining.values():
                    reporter.emit("failed", job=f"{label} #{index}",
                                  detail=f"timeout after {timeout}s")
                failed.extend(remaining.values())
                for future in remaining:
                    future.cancel()
                break
            for future in done:
                index = remaining.pop(future)
                try:
                    results[index] = future.result()
                except Exception as exc:
                    reporter.emit("failed", job=f"{label} #{index}",
                                  detail=str(exc))
                    # keep the exception as the provisional result so a
                    # serial_fallback=False caller sees the real error;
                    # the serial retry leg overwrites it on success
                    results[index] = exc
                    failed.append(index)
                    continue
                reporter.emit("done", job=f"{label} #{index}",
                              wall_time=time.time() - starts[index])
    except concurrent.futures.process.BrokenProcessPool as exc:
        reporter.emit("fallback", detail=f"process pool broke: {exc}")
        failed = [index for index in pending
                  if results[index] is None and index not in failed]
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    if failed:
        reporter.emit("fallback",
                      detail=f"{len(failed)} task(s) falling back "
                             f"to serial")
    return sorted(failed)


class JobExecutor:
    """Resolves job batches through cache, pool and serial fallback."""

    def __init__(self,
                 jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 progress: Optional[ProgressReporter] = None,
                 suite: Optional[WorkloadSuite] = None):
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = one per CPU)")
        self.jobs = jobs if jobs else default_job_count()
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.progress = progress or ProgressReporter(verbose=False)
        self.suite = suite or WorkloadSuite()
        self._keys: Dict[SimJob, str] = {}
        # key -> all jobs of the current batch sharing that timing run
        self._groups: Dict[str, List[SimJob]] = {}

    # -- public API --------------------------------------------------------

    def key(self, job: SimJob) -> str:
        """Content-hash cache key of one job (memoised)."""
        if job not in self._keys:
            program = self.suite.program(job.benchmark,
                                         optimize=job.optimize)
            self._keys[job] = job_key(job, program)
        return self._keys[job]

    def run(self, jobs: Sequence[SimJob]) -> Dict[SimJob, SimulationResult]:
        """Resolve a batch of jobs; returns ``{job: result}``.

        Duplicates in the batch are resolved once, and jobs that share a
        timing cache key (same program and config, different power
        params) share one simulation: the group's record is computed or
        loaded once and every member is costed from it under its own
        params.  Raises only if a job keeps failing *in-process* after
        all retry rounds -- pool-level failures degrade to serial
        execution instead.
        """
        ordered: List[SimJob] = []
        for job in jobs:
            if job not in ordered:
                ordered.append(job)

        self._groups = {}
        for job in ordered:
            key = self.key(job)
            self.progress.emit("queued", job=job.describe(), key=key)
            self._groups.setdefault(key, []).append(job)

        results: Dict[SimJob, SimulationResult] = {}
        pending: List[Tuple[SimJob, str]] = []
        for key, group in self._groups.items():
            record = self.cache.load(key) if self.cache else None
            if record is not None:
                _log.debug("cache-hit", key=key,
                           job=group[0].describe(), shared=len(group))
                for job in group:
                    results[job] = evaluate_power(record, job.config,
                                                  job.params)
                    self.progress.emit("cache-hit", job=job.describe(),
                                       key=key)
            else:
                # the group leader runs the timing simulation; _finish
                # fans the record out to the whole group
                _log.debug("cache-miss", key=key,
                           job=group[0].describe())
                self.progress.emit("cache-miss", job=group[0].describe(),
                                   key=key)
                pending.append((group[0], key))

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                failed = self._run_parallel(pending, results)
            else:
                failed = self._run_serial(
                    pending, results, raise_errors=self.retries == 0)
            for round_index in range(self.retries):
                if not failed:
                    break
                for job, _ in failed:
                    self.progress.emit(
                        "retry", job=job.describe(),
                        detail=f"round {round_index + 1}")
                failed = self._run_serial(failed, results,
                                          raise_errors=round_index
                                          == self.retries - 1)
        if self.cache is not None:
            # surface evictions (corrupt/stale entries dropped by the
            # store) in the manifest next to the hit/miss counts
            self.progress.metrics.gauge(
                "runner_cache_evictions",
                help="cache entries evicted as corrupt or stale").set(
                self.cache.evictions)
        self.progress.render_summary()
        return results

    # -- serial path -------------------------------------------------------

    def _finish(self, job: SimJob, key: str, payload: dict,
                results: Dict[SimJob, SimulationResult],
                wall_time: float) -> None:
        record = ActivityRecord.from_payload(payload)
        if self.cache:
            self.cache.store(key, job, record)
        self.progress.emit("done", job=job.describe(), key=key,
                           wall_time=wall_time)
        for member in self._groups.get(key, [job]):
            results[member] = evaluate_power(record, member.config,
                                             member.params)
            if member is not job:
                self.progress.emit("cache-hit", job=member.describe(),
                                   key=key, detail="shared timing run")

    def _run_serial(self, pending: Sequence[Tuple[SimJob, str]],
                    results: Dict[SimJob, SimulationResult],
                    raise_errors: bool = True
                    ) -> List[Tuple[SimJob, str]]:
        failed: List[Tuple[SimJob, str]] = []
        for job, key in pending:
            self.progress.emit("started", job=job.describe(), key=key)
            start = time.time()
            try:
                payload = execute_job(job)
            except Exception as exc:
                self.progress.emit("failed", job=job.describe(), key=key,
                                   detail=str(exc))
                if raise_errors:
                    raise
                failed.append((job, key))
                continue
            self._finish(job, key, payload, results, time.time() - start)
        return failed

    # -- parallel path -----------------------------------------------------

    def _run_parallel(self, pending: Sequence[Tuple[SimJob, str]],
                      results: Dict[SimJob, SimulationResult]
                      ) -> List[Tuple[SimJob, str]]:
        """Fan pending jobs out over a process pool.

        Returns the jobs that still need (serial) resolution: everything
        whose worker raised, whose future was abandoned on a stall, or --
        when the pool cannot even start -- the entire batch.
        """
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)))
        except (OSError, ValueError, ImportError) as exc:
            self.progress.emit("fallback",
                               detail=f"process pool unavailable: {exc}")
            return list(pending)

        failed: List[Tuple[SimJob, str]] = []
        starts: Dict[SimJob, float] = {}
        try:
            futures = {}
            for job, key in pending:
                self.progress.emit("started", job=job.describe(), key=key)
                starts[job] = time.time()
                futures[pool.submit(execute_job, job)] = (job, key)
            remaining = dict(futures)
            while remaining:
                done, _ = concurrent.futures.wait(
                    remaining, timeout=self.timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                if not done:
                    # nothing finished within one per-job timeout: the
                    # pool is stalled -- abandon it and re-run serially
                    for job, key in remaining.values():
                        self.progress.emit(
                            "failed", job=job.describe(), key=key,
                            detail=f"timeout after {self.timeout}s")
                    failed.extend(remaining.values())
                    for future in remaining:
                        future.cancel()
                    break
                for future in done:
                    job, key = remaining.pop(future)
                    try:
                        payload = future.result()
                    except Exception as exc:
                        self.progress.emit("failed", job=job.describe(),
                                           key=key, detail=str(exc))
                        failed.append((job, key))
                        continue
                    self._finish(job, key, payload, results,
                                 time.time() - starts[job])
        except concurrent.futures.process.BrokenProcessPool as exc:
            broken = [(job, key) for job, key in pending
                      if job not in results
                      and (job, key) not in failed]
            self.progress.emit("fallback",
                               detail=f"process pool broke: {exc}")
            failed = broken
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if failed:
            self.progress.emit(
                "fallback",
                detail=f"{len(failed)} job(s) falling back to serial")
        return failed
