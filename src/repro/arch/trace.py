"""Pipeline tracing.

A :class:`PipelineTracer` attached to a :class:`~repro.arch.pipeline.
Pipeline` records the cycle at which every dynamic instruction passes each
stage and renders classic pipeline diagrams::

    seq   pc        instruction            F D R I X C
    #12   0x400020  l.d $f4, 0($t7)        |F.DR..I...X..C

Stage letters: ``F`` fetch, ``D`` decode, ``R`` rename/dispatch,
``I`` issue, ``X`` writeback (execute complete), ``C`` commit,
``s`` squashed.  Instructions supplied by the reuse pointer have **no F or
D events** -- the front-end was gated; their lifecycle starts at ``R``.
That is the paper's mechanism, directly visible in the diagram (see
``examples/pipeline_trace.py``).

Tracing is opt-in -- the tracer is an ordinary stage probe, attached with
``pipeline.attach_probe(tracer)`` (or the equivalent ``tracer=``
constructor convenience) -- and bounded: after ``capacity`` instructions
the tracer stops recording new ones, so it can be attached to long runs to
capture their beginning.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arch.probe import PipelineProbe

#: Lifecycle stages in pipeline order, with their diagram letters.
STAGES = ("fetch", "decode", "dispatch", "issue", "complete", "commit")

_STAGE_LETTER = {
    "fetch": "F",
    "decode": "D",
    "dispatch": "R",
    "issue": "I",
    "complete": "X",
    "commit": "C",
}


class InstructionTrace:
    """Recorded lifecycle of one dynamic instruction."""

    __slots__ = ("seq", "pc", "disasm", "from_reuse", "events", "squashed")

    def __init__(self, seq: int, pc: int, disasm: str, from_reuse: bool):
        self.seq = seq
        self.pc = pc
        self.disasm = disasm
        self.from_reuse = from_reuse
        #: stage name -> cycle number.
        self.events: Dict[str, int] = {}
        self.squashed = False

    @property
    def first_cycle(self) -> Optional[int]:
        """Earliest recorded cycle."""
        return min(self.events.values()) if self.events else None

    @property
    def last_cycle(self) -> Optional[int]:
        """Latest recorded cycle."""
        return max(self.events.values()) if self.events else None

    @property
    def committed(self) -> bool:
        """True if the instruction reached commit."""
        return "commit" in self.events

    def latency(self) -> Optional[int]:
        """Cycles from first event to commit (None if not committed)."""
        if not self.committed or self.first_cycle is None:
            return None
        return self.events["commit"] - self.first_cycle


class PipelineTracer(PipelineProbe):
    """Bounded per-instruction lifecycle recorder (a stage probe)."""

    def __init__(self, capacity: int = 2000):
        self.capacity = capacity
        self.traces: Dict[int, InstructionTrace] = {}
        self.dropped = 0

    # -- recording hooks (called by the pipeline) ---------------------------

    def record(self, stage: str, dyn, cycle: int) -> None:
        """Record that ``dyn`` passed ``stage`` in ``cycle``."""
        trace = self.traces.get(dyn.seq)
        if trace is None:
            if len(self.traces) >= self.capacity:
                self.dropped += 1
                return
            trace = InstructionTrace(dyn.seq, dyn.pc,
                                     dyn.inst.disassemble(),
                                     dyn.from_reuse)
            self.traces[dyn.seq] = trace
        trace.events[stage] = cycle

    def record_squash(self, dyn) -> None:
        """Mark an instruction as squashed."""
        trace = self.traces.get(dyn.seq)
        if trace is not None:
            trace.squashed = True

    # -- queries ---------------------------------------------------------------

    def committed_traces(self) -> List[InstructionTrace]:
        """Traces of committed instructions, in program order."""
        return sorted((t for t in self.traces.values() if t.committed),
                      key=lambda t: t.seq)

    def reuse_traces(self) -> List[InstructionTrace]:
        """Traces of reuse-pointer-supplied instructions."""
        return sorted((t for t in self.traces.values() if t.from_reuse),
                      key=lambda t: t.seq)

    def __len__(self) -> int:
        return len(self.traces)

    # -- rendering ----------------------------------------------------------------

    def render_timeline(self, first_seq: Optional[int] = None,
                        last_seq: Optional[int] = None,
                        max_width: int = 80) -> str:
        """Render a pipeline diagram for a sequence-number window."""
        traces = sorted(self.traces.values(), key=lambda t: t.seq)
        if first_seq is not None:
            traces = [t for t in traces if t.seq >= first_seq]
        if last_seq is not None:
            traces = [t for t in traces if t.seq <= last_seq]
        traces = [t for t in traces if t.events]
        if not traces:
            return "(no traced instructions in range)"
        base = min(t.first_cycle for t in traces)
        span = max(t.last_cycle for t in traces) - base + 1
        span = min(span, max_width)
        lines = [f"cycles {base}..{base + span - 1} "
                 f"(R without F/D = supplied by the reuse pointer)"]
        for trace in traces:
            row = ["."] * span
            for stage, cycle in trace.events.items():
                offset = cycle - base
                if 0 <= offset < span:
                    row[offset] = _STAGE_LETTER[stage]
            marker = "s" if trace.squashed else (
                "r" if trace.from_reuse else " ")
            lines.append(
                f"#{trace.seq:<6d}{marker} {trace.disasm:<28.28s} "
                f"{''.join(row)}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-paragraph summary of what was traced."""
        committed = self.committed_traces()
        reused = [t for t in committed if t.from_reuse]
        latencies = [t.latency() for t in committed
                     if t.latency() is not None]
        avg_latency = (sum(latencies) / len(latencies)) if latencies else 0
        return (f"{len(self.traces)} instructions traced "
                f"({self.dropped} beyond capacity), "
                f"{len(committed)} committed, {len(reused)} supplied by "
                f"the reuse pointer, average fetch-to-commit latency "
                f"{avg_latency:.1f} cycles")
