"""Register renaming.

The rename map takes each logical register to the youngest in-flight
:class:`~repro.arch.dyninst.DynInst` that writes it, or ``None`` when the
committed value in the architectural register file is current.  Tags are the
producers themselves (sequence numbers break ties), which sidesteps the
classic ROB-slot-reuse aliasing problem: an operand captured as a producer
reference stays valid no matter when that producer commits, because in-order
commit guarantees no younger writer of the same register can have committed
before the consumer issues.

Every in-flight control instruction snapshots the whole map (64 references)
so misprediction recovery is an O(1) restore.  The same snapshot/restore
path serves the paper's reuse mechanism: leaving Code Reuse through a
mispredicted (statically predicted) branch is an ordinary recovery.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.dyninst import DynInst
from repro.isa.registers import NUM_LOGICAL_REGS, REG_ZERO


class RenameMap:
    """Logical register -> youngest in-flight producer (or None)."""

    __slots__ = ("table",)

    def __init__(self):
        self.table: List[Optional[DynInst]] = [None] * NUM_LOGICAL_REGS

    def lookup(self, reg: int) -> Optional[DynInst]:
        """Current producer for a logical register (None = committed value)."""
        return self.table[reg]

    def set_producer(self, reg: int, producer: DynInst) -> None:
        """Point a logical register at a new producer ($zero is immutable)."""
        if reg != REG_ZERO:
            self.table[reg] = producer

    def clear_producer(self, reg: int, producer: DynInst) -> None:
        """At commit: release the mapping if ``producer`` still owns it."""
        if self.table[reg] is producer:
            self.table[reg] = None

    def snapshot(self) -> List[Optional[DynInst]]:
        """Capture the full map (cheap shallow copy)."""
        return list(self.table)

    def restore(self, snap: List[Optional[DynInst]]) -> None:
        """Restore a previously captured map."""
        self.table = list(snap)

    def reset(self) -> None:
        """Clear every mapping (used between simulation runs in tests)."""
        for index in range(NUM_LOGICAL_REGS):
            self.table[index] = None
