"""Load/store queue.

Program-ordered queue of in-flight memory instructions with conservative
memory disambiguation and store-to-load forwarding:

* a load may not access the data cache while any *older* store's address is
  still unknown,
* if the youngest older store with a known address overlaps the load, the
  load forwards from it only on an exact address/size match with the store
  data already computed; any other overlap stalls the load until the store
  commits (and its value reaches memory),
* stores compute address and data at issue time, then write the data cache
  and functional memory at commit.

This is the policy of SimpleScalar's ``sim-outorder`` LSQ, which the paper's
baseline models.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.arch.dyninst import DynInst

#: Load disambiguation outcomes.
LOAD_BLOCKED = 0
LOAD_FORWARD = 1
LOAD_ACCESS_CACHE = 2


class LoadStoreQueue:
    """In-order queue of in-flight loads and stores."""

    __slots__ = ("capacity", "entries")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: Deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        """True when no further memory instruction can dispatch."""
        return len(self.entries) >= self.capacity

    def allocate(self, dyn: DynInst) -> None:
        """Append a newly dispatched load or store (must not be full)."""
        if self.full:
            raise RuntimeError("LSQ overflow")
        self.entries.append(dyn)

    def release(self, dyn: DynInst) -> None:
        """Remove a committing memory instruction (must be the oldest)."""
        if not self.entries or self.entries[0] is not dyn:
            raise RuntimeError("LSQ release out of order")
        self.entries.popleft()

    def squash_younger_than(self, seq: int) -> int:
        """Drop entries with sequence number > ``seq``; returns the count."""
        count = 0
        entries = self.entries
        while entries and entries[-1].seq > seq:
            entries.pop()
            count += 1
        return count

    def disambiguate(self, load: DynInst) -> Tuple[int, Optional[DynInst]]:
        """Decide whether a load with a known address may proceed.

        Returns ``(LOAD_BLOCKED, None)``, ``(LOAD_FORWARD, store)`` or
        ``(LOAD_ACCESS_CACHE, None)``.
        """
        load_start = load.mem_addr
        load_end = load_start + load.mem_size
        forwarding_store: Optional[DynInst] = None
        for entry in self.entries:
            if entry.seq >= load.seq:
                break
            if not entry.inst.is_store:
                continue
            if entry.mem_addr is None:
                # conservative: unknown older store address blocks the load
                return LOAD_BLOCKED, None
            store_start = entry.mem_addr
            store_end = store_start + entry.mem_size
            if store_start < load_end and load_start < store_end:
                forwarding_store = entry       # youngest older overlap wins
        if forwarding_store is None:
            return LOAD_ACCESS_CACHE, None
        exact = (forwarding_store.mem_addr == load_start
                 and forwarding_store.mem_size == load.mem_size)
        if exact and forwarding_store.done:
            return LOAD_FORWARD, forwarding_store
        return LOAD_BLOCKED, None
