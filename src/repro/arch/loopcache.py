"""A fetch-stage loop cache (the related-work baseline).

The paper positions its reuse-capable issue queue against earlier
*loop-cache* designs (Lee/Moyer/Arends; Anderson/Agarwala): a small
instruction buffer beside the I-cache that captures a tight loop's
instructions and supplies fetch from the buffer, saving **I-cache energy
only** -- branch prediction, decode and the issue queue keep operating
every cycle.

:class:`LoopCacheController` models exactly that design point so the two
approaches can be compared on equal footing (see
``benchmarks/test_comparison_loop_cache.py``):

* a *short backward branch* taken at fetch triggers FILL for its loop
  range (if the loop fits the cache),
* during FILL, fetched in-range instructions are captured,
* once every instruction of the range has been captured and fetch is
  back inside it, SUPPLY begins: in-range fetch cycles skip the I-cache
  (and ITLB) access entirely,
* leaving the range (loop exit, call, mispredict redirect) returns to
  IDLE; the captured loop stays cached and re-entering it resumes SUPPLY
  immediately (the "warm" loop-cache behaviour of Lee et al.).

Timing is unchanged by design: the loop cache supplies at the same fetch
width; only the energy accounting differs -- which matches the published
designs (they are energy optimisations, not performance features).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.isa.program import INSTRUCTION_BYTES


class LoopCacheController:
    """Fill/supply state machine for a fetch-stage loop cache."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("loop cache capacity must be >= 1")
        self.capacity = capacity
        self.head_pc: Optional[int] = None
        self.tail_pc: Optional[int] = None
        self._captured: Set[int] = set()
        self._loop_size = 0
        #: Fetch cycles served without touching the I-cache.
        self.supplied_cycles = 0
        #: Instructions delivered from the loop cache.
        self.supplied_instructions = 0
        self.fills = 0

    # -- geometry ------------------------------------------------------------

    def _in_range(self, pc: int) -> bool:
        return (self.head_pc is not None
                and self.head_pc <= pc <= self.tail_pc)

    @property
    def filled(self) -> bool:
        """True when the whole captured loop is resident."""
        return (self._loop_size > 0
                and len(self._captured) >= self._loop_size)

    # -- events from the fetch unit --------------------------------------------

    def on_backward_branch(self, branch_pc: int, target_pc: int) -> None:
        """A taken backward branch/jump was fetched (the sbb trigger)."""
        size = (branch_pc - target_pc) // INSTRUCTION_BYTES + 1
        if size > self.capacity:
            return
        if self.head_pc == target_pc and self.tail_pc == branch_pc:
            return                          # already cached (warm re-entry)
        self.head_pc = target_pc
        self.tail_pc = branch_pc
        self._captured = set()
        self._loop_size = size
        self.fills += 1

    def capture(self, pc: int) -> None:
        """Record one fetched in-range instruction during FILL."""
        if self._in_range(pc):
            self._captured.add(pc)

    def can_supply(self, pc: int) -> bool:
        """True when this fetch cycle can be served from the loop cache."""
        return self.filled and self._in_range(pc)

    def note_supply(self, instructions: int) -> None:
        """Account one loop-cache-served fetch cycle."""
        self.supplied_cycles += 1
        self.supplied_instructions += instructions
