"""Architectural register file.

Holds the committed (non-speculative) values of the 64 unified logical
registers.  Speculative values live in ROB entries until commit; the rename
map decides which of the two an operand read should target.
"""

from __future__ import annotations

from typing import List

from repro.isa.program import STACK_TOP
from repro.isa.registers import FP_BASE, NUM_LOGICAL_REGS, REG_SP, REG_ZERO


class RegisterFile:
    """Committed architectural state of the unified register space."""

    __slots__ = ("values",)

    def __init__(self):
        self.values: List = [0] * NUM_LOGICAL_REGS
        for index in range(FP_BASE, NUM_LOGICAL_REGS):
            self.values[index] = 0.0
        self.values[REG_SP] = STACK_TOP

    def read(self, reg: int):
        """Read one register ($zero always reads 0)."""
        return self.values[reg]

    def write(self, reg: int, value) -> None:
        """Write one register (writes to $zero are discarded)."""
        if reg != REG_ZERO:
            self.values[reg] = value

    def as_list(self) -> List:
        """Copy of all 64 values (for oracle comparison in tests)."""
        return list(self.values)
