"""Machine configuration.

:class:`MachineConfig` defaults reproduce the paper's Table 1 baseline:

====================  =====================================================
Issue queue           64 entries (unified int+fp, collapsing)
Load/store queue      32 entries
ROB                   64 entries
Fetch queue           4 entries
Fetch/decode width    4 instructions per cycle
Issue/commit width    4 instructions per cycle
Function units        4 IALU, 1 IMULT, 4 FPALU, 1 FPMULT
Branch predictor      bimodal, 2048 entries, 8-entry RAS
BTB                   512 sets, 4-way associative
L1 I-cache            32 KB, 2-way, 1-cycle hit
L1 D-cache            32 KB, 4-way, 1-cycle hit
L2 unified            256 KB, 4-way, 8-cycle hit
TLBs                  ITLB 16 sets x 4-way, DTLB 32 sets x 4-way,
                      4 KB pages, 30-cycle miss penalty
Memory                80 cycles first chunk, 8 cycles per remaining chunk
====================  =====================================================

The paper sweeps the issue-queue size over {32, 64, 128, 256} with
``ROB = IQ`` and ``LSQ = IQ / 2``; :meth:`MachineConfig.with_iq_size`
applies exactly that rule.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size / (associativity x line size)."""
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets * self.assoc * self.line_bytes != self.size_bytes:
            raise ValueError(f"{self.name}: size not divisible into sets")
        return sets


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of one TLB."""

    name: str
    num_sets: int
    assoc: int
    page_bytes: int = 4096
    miss_penalty: int = 30


@dataclass(frozen=True)
class MachineConfig:
    """Full machine configuration (paper Table 1 defaults)."""

    # -- pipeline widths ----------------------------------------------------
    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4

    # -- window sizes --------------------------------------------------------
    fetch_queue_size: int = 4
    iq_size: int = 64
    rob_size: int = 64
    lsq_size: int = 32

    # -- functional units ----------------------------------------------------
    num_ialu: int = 4
    num_imult: int = 1
    num_fpalu: int = 4
    num_fpmult: int = 1
    dcache_ports: int = 2

    # -- branch prediction ------------------------------------------------------
    #: Direction predictor: "bimod" (the paper's baseline) or "gshare".
    bpred_kind: str = "bimod"
    bimod_size: int = 2048
    #: Global-history bits (gshare only).
    bpred_history_bits: int = 8
    ras_size: int = 8
    btb_sets: int = 512
    btb_assoc: int = 4

    # -- memory hierarchy ---------------------------------------------------------
    il1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "il1", size_bytes=32 * 1024, assoc=2, line_bytes=32, hit_latency=1))
    dl1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "dl1", size_bytes=32 * 1024, assoc=4, line_bytes=32, hit_latency=1))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "l2", size_bytes=256 * 1024, assoc=4, line_bytes=64, hit_latency=8))
    itlb: TlbConfig = field(default_factory=lambda: TlbConfig(
        "itlb", num_sets=16, assoc=4))
    dtlb: TlbConfig = field(default_factory=lambda: TlbConfig(
        "dtlb", num_sets=32, assoc=4))
    mem_first_chunk: int = 80
    mem_next_chunk: int = 8

    # -- the paper's mechanism -------------------------------------------------
    #: Master switch for the reuse-capable issue queue.
    reuse_enabled: bool = False
    #: Controller variant: "loop" is the paper's backward-branch tight-loop
    #: detector; "trace" generalizes detection to arbitrary hot traces via
    #: a trace-head table keyed on start PC + branch-outcome signature
    #: (see ``docs/trace_reuse.md``).  Ignored when ``reuse_enabled`` is
    #: False.
    reuse_mode: str = "loop"
    #: Non-bufferable loop table entries (0 disables the NBLT).
    nblt_size: int = 8
    #: Trace-head table entries for the trace-reuse controller (FIFO;
    #: 0 disables trace detection entirely).  Unused in "loop" mode.
    tht_size: int = 16
    #: "multi" buffers whole iterations while free entries remain (the
    #: strategy the paper chooses); "single" buffers exactly one iteration.
    buffering_strategy: str = "multi"

    # -- related-work baseline ---------------------------------------------------
    #: Fetch-stage loop cache capacity in instructions (0 disables).  This
    #: is the Lee/Moyer/Arends-style comparison point from the paper's
    #: related work: it saves I-cache energy only, leaving the branch
    #: predictor, decoder and issue queue running.
    loop_cache_size: int = 0
    #: When True the loop cache stores *decoded* instructions (the
    #: Tang/Gupta/Nicolau decode filter cache): supplied instructions skip
    #: decode energy as well.  Requires ``loop_cache_size > 0``.
    loop_cache_decoded: bool = False

    # -- safety ---------------------------------------------------------------
    max_cycles: int = 100_000_000

    def __post_init__(self):
        if self.buffering_strategy not in ("single", "multi"):
            raise ValueError(
                f"buffering_strategy must be 'single' or 'multi', "
                f"got {self.buffering_strategy!r}")
        for name in ("fetch_width", "decode_width", "issue_width",
                     "commit_width", "fetch_queue_size", "iq_size",
                     "rob_size", "lsq_size"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.reuse_mode not in ("loop", "trace"):
            raise ValueError(
                f"reuse_mode must be 'loop' or 'trace', "
                f"got {self.reuse_mode!r}")
        if self.nblt_size < 0:
            raise ValueError("nblt_size must be >= 0")
        if self.tht_size < 0:
            raise ValueError("tht_size must be >= 0")
        if self.loop_cache_size < 0:
            raise ValueError("loop_cache_size must be >= 0")
        if self.loop_cache_decoded and not self.loop_cache_size:
            raise ValueError(
                "loop_cache_decoded requires loop_cache_size > 0")
        if self.bpred_kind not in ("bimod", "gshare"):
            raise ValueError(
                f"bpred_kind must be 'bimod' or 'gshare', "
                f"got {self.bpred_kind!r}")

    def with_iq_size(self, iq_size: int) -> "MachineConfig":
        """Resize the window using the paper's sweep rule.

        ``ROB = IQ`` and ``LSQ = IQ / 2`` (Section 3 of the paper).
        """
        return dataclasses.replace(
            self, iq_size=iq_size, rob_size=iq_size, lsq_size=iq_size // 2)

    def replace(self, **kwargs) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def table1(self) -> str:
        """Render the configuration in the layout of the paper's Table 1."""
        rows = [
            ("Issue Queue", f"{self.iq_size} entries"),
            ("Load/Store Queue", f"{self.lsq_size} entries"),
            ("ROB", f"{self.rob_size} entries"),
            ("Fetch Queue", f"{self.fetch_queue_size} entries"),
            ("Fetch/Decode Width",
             f"{self.fetch_width} inst. per cycle"),
            ("Issue/Commit Width",
             f"{self.issue_width} inst. per cycle"),
            ("Function Units",
             f"{self.num_ialu} IALU, {self.num_imult} IMULT, "
             f"{self.num_fpalu} FPALU, {self.num_fpmult} FPMULT"),
            ("Branch Predictor",
             f"bimod, {self.bimod_size} entries, RAS {self.ras_size} "
             f"entries"),
            ("BTB", f"{self.btb_sets} set {self.btb_assoc} way assoc."),
            ("L1 ICache",
             f"{self.il1.size_bytes // 1024}KB, {self.il1.assoc} way, "
             f"{self.il1.hit_latency} cycle"),
            ("L1 DCache",
             f"{self.dl1.size_bytes // 1024}KB, {self.dl1.assoc} way, "
             f"{self.dl1.hit_latency} cycle"),
            ("L2 UCache",
             f"{self.l2.size_bytes // 1024}KB, {self.l2.assoc} way, "
             f"{self.l2.hit_latency} cycles"),
            ("TLB",
             f"ITLB: {self.itlb.num_sets} set {self.itlb.assoc} way, "
             f"DTLB: {self.dtlb.num_sets} set {self.dtlb.assoc} way, "
             f"{self.itlb.page_bytes // 1024}KB page size, "
             f"{self.itlb.miss_penalty} cycle penalty"),
            ("Memory",
             f"{self.mem_first_chunk} cycles for first chunk, "
             f"{self.mem_next_chunk} cycles the rest"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


#: The paper's baseline configuration (64-entry issue queue, reuse off).
BASELINE = MachineConfig()

#: Issue-queue sizes swept in the paper's evaluation.
SWEEP_IQ_SIZES = (32, 64, 128, 256)
