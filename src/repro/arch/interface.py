"""The seam between simulation drivers and pipeline core engines.

:class:`CoreInterface` is the structural protocol every cycle-level core
implements.  Two engines exist today:

* :class:`repro.arch.pipeline.Pipeline` -- the **object core**: one
  ``DynInst`` object per in-flight instruction, queue entries as objects.
  Reference semantics, full probe support, the engine every probe,
  tracer and crosscheck runs against.
* :class:`repro.arch.fastcore.FastPipeline` -- the **array core**: all
  in-flight state lives in preallocated parallel columns indexed by slot
  id.  Bit-exact with the object core (byte-identical activity records)
  but several times faster on the no-probe path.  Attaching a probe
  *before the first cycle* transparently falls back to a delegate object
  core so observers keep working unchanged.

``sim.simulator.run_timing(engine=...)`` selects between them; see
``docs/pipeline.md`` for when to pick which.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, runtime_checkable

from repro.arch.stats import PipelineStats


@runtime_checkable
class CoreInterface(Protocol):
    """What a pipeline core must expose to drivers and activity capture.

    Attributes (all read after or between cycles, never mutated by
    callers): ``program``, ``config``, ``stats``, ``hierarchy``,
    ``predictor``, ``mem_image``, ``fetch_unit`` (needs ``.loop_cache``),
    ``controller`` (needs ``.events`` / ``.transitions`` / ``.state`` /
    ``.gated`` / ``.enabled``), ``cycle`` and ``halted``.
    """

    cycle: int
    halted: bool
    stats: PipelineStats

    def run(self, max_cycles: Optional[int] = None) -> PipelineStats:
        """Run to the committed halt; raises SimulationTimeout otherwise."""
        ...

    def step(self) -> None:
        """Advance the machine by exactly one cycle."""
        ...

    def attach_probe(self, probe) -> None:
        """Attach an observer (see :mod:`repro.arch.probe`)."""
        ...

    def detach_probe(self, probe) -> None:
        """Detach a previously attached observer."""
        ...

    def architectural_registers(self) -> List:
        """Committed register values (for oracle comparison)."""
        ...
