"""Pluggable pipeline probes.

A probe is an observer attached to a :class:`~repro.arch.pipeline.Pipeline`
via :meth:`~repro.arch.pipeline.Pipeline.attach_probe`.  Two hook families
exist, and a probe subscribes to a family simply by overriding its hooks:

* **stage hooks** -- :meth:`PipelineProbe.record` fires once per
  per-instruction lifecycle event (``fetch``, ``decode``, ``dispatch``,
  ``issue``, ``complete``, ``commit``) and
  :meth:`PipelineProbe.record_squash` once per squashed instruction.
  The tracer (:class:`~repro.arch.trace.PipelineTracer`) is a stage probe.
* **cycle hooks** -- :meth:`PipelineProbe.on_cycle` fires once at the end
  of every :meth:`~repro.arch.pipeline.Pipeline.step`.  The invariant
  validator (:class:`~repro.arch.validate.InvariantProbe`) is a cycle
  probe.

The pipeline inspects which hooks a probe actually overrides at attach
time and registers it only for those families, so a cycle-only probe never
costs a call per stage event and vice versa.  With no probes attached the
pipeline's dispatch slots stay ``None`` and the hot loop pays nothing
beyond the ``is not None`` checks it always performed.

Probes must be **passive**: they may read any pipeline state but must not
mutate it -- the test suite asserts that probed and probe-free runs produce
bit-identical statistics.
"""

from __future__ import annotations


class PipelineProbe:
    """Base class for pipeline observers; every hook is an optional no-op.

    Subclassing is recommended but not required: any object whose class
    defines ``record`` / ``record_squash`` / ``on_cycle`` methods can be
    attached, and is registered for exactly the hooks it defines.
    """

    def on_attach(self, pipeline) -> None:
        """Called when the probe is attached to ``pipeline``."""

    def on_detach(self, pipeline) -> None:
        """Called when the probe is detached from ``pipeline``."""

    def record(self, stage: str, dyn, cycle: int) -> None:
        """One instruction lifecycle event (see module doc for stages)."""

    def record_squash(self, dyn) -> None:
        """One instruction squashed by misprediction recovery."""

    def on_cycle(self, pipeline) -> None:
        """End of one pipeline cycle (after all stages have run)."""


def overrides_hook(probe, name: str) -> bool:
    """True if ``probe`` provides a real (non-default) ``name`` hook.

    A :class:`PipelineProbe` subclass counts only if it overrides the
    base no-op; a duck-typed object counts if it has the method at all.
    """
    method = getattr(type(probe), name, None)
    if method is None:
        return False
    return method is not getattr(PipelineProbe, name)
