"""Out-of-order superscalar microarchitecture substrate.

This package is the reproduction's stand-in for SimpleScalar 3.0's
``sim-outorder``: a cycle-level model of a MIPS-R10000-style datapath with a
*separate* issue queue and reorder buffer (the paper's baseline), consisting
of

* :mod:`repro.arch.config` -- machine configuration (the paper's Table 1),
* :mod:`repro.arch.branch` -- bimodal predictor + BTB + return-address stack,
* :mod:`repro.arch.mem` -- caches, TLBs and DRAM timing,
* :mod:`repro.arch.fetch` -- the fetch unit and fetch queue,
* :mod:`repro.arch.rename` -- the register rename map with branch snapshots,
* :mod:`repro.arch.issue_queue` -- the collapsing issue queue (with the
  augmentation hooks the reuse mechanism needs),
* :mod:`repro.arch.rob`, :mod:`repro.arch.lsq`, :mod:`repro.arch.regfile`,
  :mod:`repro.arch.functional_units` -- the remaining backend structures,
* :mod:`repro.arch.pipeline` -- the per-cycle engine tying it all together.
"""

from repro.arch.config import CacheConfig, MachineConfig, TlbConfig
from repro.arch.pipeline import Pipeline
from repro.arch.stats import PipelineStats

__all__ = [
    "CacheConfig",
    "MachineConfig",
    "TlbConfig",
    "Pipeline",
    "PipelineStats",
]
