"""Branch prediction substrate: bimodal predictor, BTB and RAS.

The composite :class:`~repro.arch.branch.predictor.BranchPredictor` is what
the fetch unit talks to; the individual structures are exposed for unit
tests and for the power model's activity counters.
"""

from repro.arch.branch.bimodal import BimodalPredictor
from repro.arch.branch.btb import BranchTargetBuffer
from repro.arch.branch.predictor import BranchPredictor, Prediction
from repro.arch.branch.ras import ReturnAddressStack

__all__ = [
    "BimodalPredictor",
    "BranchTargetBuffer",
    "BranchPredictor",
    "Prediction",
    "ReturnAddressStack",
]
