"""Bimodal (2-bit saturating counter) direction predictor.

This is SimpleScalar's ``bimod`` predictor: a table of 2-bit counters
indexed by the branch PC.  The paper's baseline uses 2048 entries.
"""

from __future__ import annotations


class BimodalPredictor:
    """Table of 2-bit saturating counters indexed by word-aligned PC."""

    #: Counter value at which a branch is predicted taken (2 or 3).
    TAKEN_THRESHOLD = 2

    #: Initial counter value: weakly taken, as in SimpleScalar.
    INITIAL_COUNTER = 2

    def __init__(self, size: int = 2048):
        if size < 1 or size & (size - 1):
            raise ValueError("bimodal table size must be a power of two")
        self.size = size
        self._mask = size - 1
        self.table = [self.INITIAL_COUNTER] * size
        self.lookups = 0
        self.updates = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        self.lookups += 1
        return self.table[self._index(pc)] >= self.TAKEN_THRESHOLD

    def peek(self, pc: int) -> bool:
        """Direction prediction without charging a lookup (tests only)."""
        return self.table[self._index(pc)] >= self.TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter with the resolved direction."""
        self.update_at_index(self._index(pc), taken)

    def update_at_index(self, index: int, taken: bool) -> None:
        """Train a specific counter (bimodal indexing is history-free, so
        this always equals :meth:`update` for the same branch)."""
        self.updates += 1
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1
