"""Composite fetch-stage branch predictor.

Combines the bimodal direction predictor, the BTB and the return-address
stack into the single object the fetch unit consults.  The policy mirrors
SimpleScalar's ``bpred_lookup``:

* conditional branches take their direction from the bimodal table and
  their target from the BTB (a predicted-taken branch that misses in the
  BTB gets its target at decode, costing a one-cycle fetch bubble),
* direct jumps and calls are always taken,
* ``jr $ra`` pops the RAS; other indirect jumps use the BTB and fall back
  to a (surely wrong) fall-through prediction on a miss,
* calls push their return address at fetch time.

Updates happen at commit (direction training + BTB install for taken
non-return control flow).  During the paper's **Code Reuse** state none of
this logic runs -- reused branches are statically predicted with the outcome
recorded during Loop Buffering, which is the source of the branch-predictor
power saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.branch.bimodal import BimodalPredictor
from repro.arch.branch.btb import BranchTargetBuffer
from repro.arch.branch.gshare import GsharePredictor
from repro.arch.branch.ras import ReturnAddressStack
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass
from repro.isa.program import INSTRUCTION_BYTES


@dataclass
class Prediction:
    """Fetch-stage prediction for one control instruction."""

    taken: bool
    target: int
    #: True when a predicted-taken instruction missed in the BTB, costing a
    #: one-cycle fetch bubble while decode produces the target.
    btb_bubble: bool = False
    #: Direction-table index used at fetch (carried to commit so training
    #: hits the same entry even after the global history has moved on).
    direction_index: int = -1


class BranchPredictor:
    """Direction predictor (bimodal or gshare) + BTB + RAS composite."""

    def __init__(self, bimod_size: int = 2048, btb_sets: int = 512,
                 btb_assoc: int = 4, ras_size: int = 8,
                 kind: str = "bimod", history_bits: int = 8):
        if kind == "bimod":
            self.direction = BimodalPredictor(bimod_size)
            #: Alias kept for the paper's default configuration.
            self.bimod = self.direction
        elif kind == "gshare":
            self.direction = GsharePredictor(bimod_size, history_bits)
            self.gshare = self.direction
        else:
            raise ValueError(f"unknown predictor kind {kind!r}")
        self.kind = kind
        self.btb = BranchTargetBuffer(btb_sets, btb_assoc)
        self.ras = ReturnAddressStack(ras_size)
        #: Number of fetch-stage predictions performed (gated in reuse mode).
        self.lookups = 0
        #: Number of commit-stage trainings (never gated).
        self.updates = 0

    def snapshot_state(self) -> tuple:
        """Capture all speculatively-updated predictor state (RAS, and the
        gshare history register when configured).  Taken at fetch, right
        after a control instruction's own prediction, so misprediction
        recovery restores exactly the post-prediction state."""
        if self.kind == "gshare":
            return (self.ras.snapshot(), self.direction.snapshot())
        return (self.ras.snapshot(), None)

    def restore_state(self, snap: tuple, actual_taken=None) -> None:
        """Restore a :meth:`snapshot_state` capture after recovery.

        For a mispredicted *conditional branch*, pass its resolved
        direction as ``actual_taken``: the snapshot's youngest history bit
        is the wrong speculated one and must be repaired, or a gshare
        predictor can never learn history-correlated patterns.
        """
        ras_snap, direction_snap = snap
        self.ras.restore(ras_snap)
        if direction_snap is not None:
            if actual_taken is not None:
                direction_snap = (((direction_snap >> 1) << 1)
                                  | int(actual_taken))
            self.direction.restore(direction_snap)

    def predict(self, inst: Instruction, pc: int) -> Prediction:
        """Predict one control instruction at fetch time.

        Applies speculative RAS effects (push for calls, pop for returns).
        """
        self.lookups += 1
        icls = inst.op.icls
        fall_through = pc + INSTRUCTION_BYTES

        if icls is InstrClass.BRANCH:
            direction_index = self.direction._index(pc)
            taken = self.direction.predict(pc)
            btb_target = self.btb.lookup(pc)
            if not taken:
                return Prediction(False, fall_through,
                                  direction_index=direction_index)
            if btb_target is None:
                return Prediction(True, inst.target, btb_bubble=True,
                                  direction_index=direction_index)
            return Prediction(True, btb_target,
                              direction_index=direction_index)

        if icls is InstrClass.JUMP or icls is InstrClass.CALL:
            if icls is InstrClass.CALL:
                self.ras.push(fall_through)
            btb_target = self.btb.lookup(pc)
            if btb_target is None:
                return Prediction(True, inst.target, btb_bubble=True)
            return Prediction(True, btb_target)

        if icls is InstrClass.IJUMP:
            if inst.is_return:
                return Prediction(True, self.ras.pop())
            btb_target = self.btb.lookup(pc)
            if btb_target is None:
                return Prediction(True, fall_through, btb_bubble=True)
            return Prediction(True, btb_target)

        if icls is InstrClass.ICALL:
            self.ras.push(fall_through)
            btb_target = self.btb.lookup(pc)
            if btb_target is None:
                return Prediction(True, fall_through, btb_bubble=True)
            return Prediction(True, btb_target)

        raise ValueError(f"not a control instruction: {inst}")

    def update(self, inst: Instruction, pc: int, taken: bool,
               target: int, direction_index: int = -1) -> None:
        """Train the predictor with a committed control instruction.

        ``direction_index`` is the fetch-time table index; commits of
        reuse-supplied branch instances (which never passed through fetch)
        pass -1 and fall back to a current-state index.
        """
        self.updates += 1
        icls = inst.op.icls
        if icls is InstrClass.BRANCH:
            if direction_index >= 0:
                self.direction.update_at_index(direction_index, taken)
            else:
                self.direction.update(pc, taken)
        if taken and not inst.is_return:
            self.btb.update(pc, target)
