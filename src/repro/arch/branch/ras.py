"""Return-address stack.

A small circular stack (8 entries in the paper's baseline) updated
speculatively at fetch: calls push their return address, returns pop their
predicted target.  Because updates are speculative, every in-flight control
instruction snapshots the stack (it is tiny) so misprediction recovery can
restore it exactly.
"""

from __future__ import annotations

from typing import List, Tuple


class ReturnAddressStack:
    """Circular return-address stack with full snapshot/restore."""

    def __init__(self, size: int = 8):
        if size < 1:
            raise ValueError("RAS size must be >= 1")
        self.size = size
        self._stack: List[int] = [0] * size
        self._top = 0          # index of the next free slot
        self._depth = 0        # number of valid entries (<= size)
        self.pushes = 0
        self.pops = 0

    def push(self, return_address: int) -> None:
        """Push a call's return address (overwrites oldest when full)."""
        self.pushes += 1
        self._stack[self._top] = return_address
        self._top = (self._top + 1) % self.size
        if self._depth < self.size:
            self._depth += 1

    def pop(self) -> int:
        """Pop the predicted return target (0 when empty)."""
        self.pops += 1
        if self._depth == 0:
            return 0
        self._top = (self._top - 1) % self.size
        self._depth -= 1
        return self._stack[self._top]

    @property
    def depth(self) -> int:
        """Number of valid entries."""
        return self._depth

    def snapshot(self) -> Tuple[List[int], int, int]:
        """Capture the full stack state."""
        return (list(self._stack), self._top, self._depth)

    def restore(self, snap: Tuple[List[int], int, int]) -> None:
        """Restore a previously captured state."""
        stack, top, depth = snap
        self._stack = list(stack)
        self._top = top
        self._depth = depth
