"""Gshare (global-history) direction predictor.

SimpleScalar's ``2lev`` family member most common in later studies: a
global branch-history register XORed with the branch PC indexes a table of
2-bit saturating counters.  Provided as an alternative to the paper's
bimodal baseline (``MachineConfig.bpred_kind = "gshare"``) so the
mechanism's sensitivity to predictor quality can be studied: reused
branches bypass *any* fetch-time predictor, so the mechanism's savings are
largely predictor-independent while the baseline's misprediction rate is
not.

The history register is updated **speculatively at prediction time** and
repaired on misprediction recovery via the same snapshot path as the RAS
(each in-flight control instruction snapshots the history).
"""

from __future__ import annotations


class GsharePredictor:
    """Global-history XOR-indexed table of 2-bit saturating counters."""

    TAKEN_THRESHOLD = 2
    INITIAL_COUNTER = 2

    def __init__(self, size: int = 2048, history_bits: int = 8):
        if size < 1 or size & (size - 1):
            raise ValueError("gshare table size must be a power of two")
        if not 0 < history_bits <= 20:
            raise ValueError("history_bits must be in 1..20")
        self.size = size
        self.history_bits = history_bits
        self._mask = size - 1
        self._history_mask = (1 << history_bits) - 1
        self.table = [self.INITIAL_COUNTER] * size
        #: Speculative global history (youngest outcome in bit 0).
        self.history = 0
        self.lookups = 0
        self.updates = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict and speculatively push the predicted outcome into the
        history register (repaired on recovery via snapshots)."""
        self.lookups += 1
        taken = self.table[self._index(pc)] >= self.TAKEN_THRESHOLD
        self._push(taken)
        return taken

    def peek(self, pc: int) -> bool:
        """Direction prediction without counters or history effects."""
        return self.table[self._index(pc)] >= self.TAKEN_THRESHOLD

    def _push(self, taken: bool) -> None:
        self.history = ((self.history << 1) | int(taken)) \
            & self._history_mask

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter for the resolved branch.

        Uses the *current* history as the index approximation; an exact
        implementation would carry the fetch-time index with the branch,
        which :class:`~repro.arch.branch.predictor.BranchPredictor` does by
        passing it through the prediction result when configured for
        gshare.
        """
        self.updates += 1
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1

    def update_at_index(self, index: int, taken: bool) -> None:
        """Train a specific table index (the fetch-time one)."""
        self.updates += 1
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1

    def snapshot(self) -> int:
        """Capture the speculative history register."""
        return self.history

    def restore(self, snap: int) -> None:
        """Restore the history register after misprediction recovery."""
        self.history = snap
