"""Branch target buffer.

A set-associative tag/target store with true-LRU replacement.  The paper's
baseline is 512 sets x 4 ways.  The fetch unit uses it to obtain targets for
taken control flow; misses on predicted-taken branches cost a one-cycle
fetch bubble (the target is produced at decode).
"""

from __future__ import annotations

from typing import Optional


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, num_sets: int = 512, assoc: int = 4):
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ValueError("BTB set count must be a power of two")
        if assoc < 1:
            raise ValueError("BTB associativity must be >= 1")
        self.num_sets = num_sets
        self.assoc = assoc
        self._mask = num_sets - 1
        # each set is a list of [tag, target] in MRU..LRU order
        self._sets = [[] for _ in range(num_sets)]
        self.lookups = 0
        self.hits = 0
        self.updates = 0

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def lookup(self, pc: int) -> Optional[int]:
        """Return the stored target for ``pc``, or None on a miss."""
        self.lookups += 1
        ways = self._sets[self._set_index(pc)]
        for position, way in enumerate(ways):
            if way[0] == pc:
                self.hits += 1
                if position:
                    ways.insert(0, ways.pop(position))
                return way[1]
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for a taken control instruction."""
        self.updates += 1
        ways = self._sets[self._set_index(pc)]
        for position, way in enumerate(ways):
            if way[0] == pc:
                way[1] = target
                if position:
                    ways.insert(0, ways.pop(position))
                return
        if len(ways) >= self.assoc:
            ways.pop()
        ways.insert(0, [pc, target])

    @property
    def misses(self) -> int:
        """Lookup misses."""
        return self.lookups - self.hits
