"""Functional-unit pools.

The paper's Table 1 machine: 4 integer ALUs, 1 integer multiplier/divider,
4 FP ALUs and 1 FP multiplier/divider.  ALU-class operations are fully
pipelined (a unit accepts a new operation every cycle); divides and square
roots occupy their unit for the whole latency, as in SimpleScalar.

Each unit tracks the next cycle at which it can accept an operation, which
uniformly models both behaviours: a pipelined issue advances the unit's
availability by one cycle, a non-pipelined issue by the full latency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.config import MachineConfig
from repro.isa.opcodes import FuClass, Opcode

#: Opcodes that occupy their functional unit for the full latency.
NON_PIPELINED_OPS = frozenset(
    {Opcode.DIV, Opcode.DIV_D, Opcode.SQRT_D}
)


class FunctionalUnitPool:
    """All functional units, grouped by :class:`~repro.isa.opcodes.FuClass`."""

    __slots__ = ("_next_free", "issues")

    def __init__(self, config: MachineConfig):
        self._next_free: Dict[FuClass, List[int]] = {
            FuClass.IALU: [0] * config.num_ialu,
            FuClass.IMULT: [0] * config.num_imult,
            FuClass.FPALU: [0] * config.num_fpalu,
            FuClass.FPMULT: [0] * config.num_fpmult,
        }
        self.issues: Dict[FuClass, int] = {cls: 0 for cls in self._next_free}

    def try_issue(self, op: Opcode, now: int) -> bool:
        """Claim a unit for ``op`` at cycle ``now``; False if none is free."""
        fu_class = op.fu
        if fu_class is FuClass.NONE:
            return True
        units = self._next_free[fu_class]
        for index, free_at in enumerate(units):
            if free_at <= now:
                if op in NON_PIPELINED_OPS:
                    units[index] = now + op.latency
                else:
                    units[index] = now + 1
                self.issues[fu_class] += 1
                return True
        return False

    def busy_units(self, fu_class: FuClass, now: int) -> int:
        """Units of a class not yet able to accept an operation."""
        return sum(1 for free_at in self._next_free[fu_class]
                   if free_at > now)
