"""Dynamic instruction records.

A :class:`DynInst` is one dynamic instance of a static
:class:`~repro.isa.instruction.Instruction` flowing through the pipeline.
It doubles as the ROB entry (the ROB is an ordered container of these) and
carries everything renaming, issue, execution and commit need.  In the
paper's Code Reuse state, each pass of the reuse pointer over a buffered
issue-queue entry mints a *new* DynInst (new sequence number, new ROB slot)
while recycling the same issue-queue entry -- exactly the paper's "only
register information and ROB pointer are updated".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.instruction import Instruction


class DynInst:
    """One in-flight dynamic instruction (also the ROB entry)."""

    __slots__ = (
        "seq", "inst", "pc",
        # prediction state (control instructions)
        "pred_taken", "pred_target", "actual_taken", "actual_target",
        # pipeline status
        "dispatched", "issued", "done", "committed", "squashed",
        # result and operands
        "value", "sources", "waiters",
        # memory state (loads/stores)
        "mem_addr", "mem_size", "store_value", "mem_state",
        # recovery state (control instructions)
        "rename_snapshot", "ras_snapshot",
        # reuse bookkeeping
        "from_reuse", "buffer_session", "iq_entry", "predecoded",
        "bpred_index",
    )

    def __init__(self, seq: int, inst: Instruction, pc: int):
        self.seq = seq
        self.inst = inst
        self.pc = pc
        self.pred_taken: Optional[bool] = None
        self.pred_target: Optional[int] = None
        self.actual_taken: Optional[bool] = None
        self.actual_target: Optional[int] = None
        self.dispatched = False
        self.issued = False
        self.done = False
        self.committed = False
        self.squashed = False
        self.value = None
        #: Renamed sources: list of (producer DynInst or None, logical reg).
        self.sources: List[Tuple[Optional["DynInst"], int]] = []
        #: Issue-queue entries waiting on this instruction's result.
        self.waiters: Optional[list] = None
        self.mem_addr: Optional[int] = None
        self.mem_size: int = 0
        self.store_value = None
        #: Load progress: 0 = waiting for agen, 1 = addr ready, 2 = accessing.
        self.mem_state: int = 0
        self.rename_snapshot = None
        self.ras_snapshot = None
        #: True when this instance was supplied by the reuse pointer.
        self.from_reuse = False
        #: Buffering-session id assigned at decode when this instance is to
        #: be buffered (None = not a candidate).  The session id guards
        #: against a stale candidate from a revoked session leaking into a
        #: session that started while the instance sat in the decode queue.
        self.buffer_session = None
        #: The issue-queue entry currently holding this instance.
        self.iq_entry = None
        #: True when supplied pre-decoded by a decode filter cache.
        self.predecoded = False
        #: Fetch-time direction-table index (-1 when not fetched/predicted).
        self.bpred_index = -1

    @property
    def is_control(self) -> bool:
        """True for control-flow instructions."""
        return self.inst.is_control

    def mispredicted(self) -> bool:
        """True when the resolved outcome differs from the prediction."""
        if self.actual_taken != self.pred_taken:
            return True
        if self.actual_taken and self.actual_target != self.pred_target:
            return True
        return False

    def __repr__(self) -> str:
        flags = "".join(
            ch for ch, cond in (
                ("D", self.dispatched), ("I", self.issued), ("X", self.done),
                ("C", self.committed), ("S", self.squashed),
                ("R", self.from_reuse),
            ) if cond
        )
        return f"<DynInst #{self.seq} {self.inst.disassemble()} [{flags}]>"
