"""The out-of-order pipeline engine.

One :class:`Pipeline` instance executes one program on one machine
configuration, cycle by cycle, in the classic reverse-stage order::

    commit -> writeback(+branch resolve) -> LSQ -> issue -> dispatch
           -> decode -> fetch

Values are carried by the dynamic instructions themselves (the ROB doubles
as the physical register file, MIPS-R10000 style with the paper's separate
issue queue), stores write memory at commit, and wrong-path instructions are
genuinely fetched and executed -- so the architectural state at halt must
equal the in-order interpreter's, which the test suite checks exhaustively.

The paper's mechanism hooks in at four points:

* decode calls :meth:`ReuseController.on_decode` (loop detection, buffering
  bookkeeping, promote decision),
* dispatch calls ``on_dispatch`` / ``on_dispatch_iq_full`` and, in Code
  Reuse state, draws instructions from the reuse pointer instead of the
  decoder,
* issue leaves classification-bit entries resident (setting their issue
  state bit) instead of removing them,
* misprediction recovery calls ``on_mispredict`` (revoke / reuse exit).

When the controller's gate signal is up, fetch and decode simply do not run:
no I-cache, ITLB or branch-predictor activity occurs -- that is the power
saving the paper measures.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional

from repro.arch.branch.predictor import BranchPredictor
from repro.arch.config import MachineConfig
from repro.arch.dyninst import DynInst
from repro.arch.fetch import FetchUnit
from repro.arch.functional_units import FunctionalUnitPool
from repro.arch.issue_queue import IQEntry, IssueQueue
from repro.arch.lsq import (
    LOAD_ACCESS_CACHE,
    LOAD_BLOCKED,
    LOAD_FORWARD,
    LoadStoreQueue,
)
from repro.arch.mem.hierarchy import MemoryHierarchy
from repro.arch.regfile import RegisterFile
from repro.arch.probe import overrides_hook
from repro.arch.rename import RenameMap
from repro.arch.rob import ReorderBuffer
from repro.arch.stats import REUSE_COUNTER_OF, PipelineStats
from repro.arch.trace import PipelineTracer
from repro.core import controller_for
from repro.core.states import IQState
from repro.isa.memory import SparseMemory
from repro.isa.opcodes import FuClass, InstrClass
from repro.isa.program import INSTRUCTION_BYTES, Program
from repro.isa.semantics import (
    access_size,
    branch_taken,
    effective_address,
    evaluate,
    forwarded_value,
    load_from_memory,
    store_to_memory,
)


class SimulationTimeout(Exception):
    """The run exceeded its cycle budget or stopped making progress."""


class Pipeline:
    """Cycle-level out-of-order core executing one program."""

    __slots__ = (
        "program", "config", "stats", "mem_image", "hierarchy",
        "predictor", "regfile", "rename", "rob", "iq", "lsq", "fus",
        "fetch_unit", "controller", "decoded", "pending_loads",
        "pending_stores", "cycle", "halted",
        "_stage_probes", "_cycle_probes", "_record", "_record_squash",
        "_seq", "_inflight", "_inflight_push", "_dcache_ports_used",
        "_decode_buffer_cap",
    )

    def __init__(self, program: Program, config: MachineConfig,
                 memory: Optional[SparseMemory] = None,
                 tracer: Optional[PipelineTracer] = None):
        self.program = program
        self.config = config
        # probe machinery: stage probes receive per-instruction lifecycle
        # events, cycle probes run at the end of every step.  _record /
        # _record_squash are the (None when idle) hot-path dispatchers.
        self._stage_probes: List = []
        self._cycle_probes: List = []
        self._record = None
        self._record_squash = None
        self.mem_image = memory if memory is not None \
            else program.initial_memory()
        self.stats = PipelineStats()
        self.hierarchy = MemoryHierarchy(config)
        self.predictor = BranchPredictor(
            config.bimod_size, config.btb_sets, config.btb_assoc,
            config.ras_size, kind=config.bpred_kind,
            history_bits=config.bpred_history_bits)
        self.regfile = RegisterFile()
        self.rename = RenameMap()
        self.rob = ReorderBuffer(config.rob_size)
        self.lsq = LoadStoreQueue(config.lsq_size)
        self.iq = IssueQueue(config.iq_size)
        self.fus = FunctionalUnitPool(config)
        self.controller = controller_for(config.reuse_mode)(
            config, self.iq, self.stats)
        self._seq = 0
        self.fetch_unit = FetchUnit(program, config, self.hierarchy,
                                    self.predictor, self._next_seq,
                                    self.stats)
        self.decoded = deque()
        self._decode_buffer_cap = 2 * config.decode_width
        self._inflight: List = []           # heap of (cycle, seq, dyn)
        self._inflight_push = heapq.heappush
        self.pending_loads: List[DynInst] = []
        # stores whose address is computed but whose data operand is still
        # being produced (split store-address / store-data execution)
        self.pending_stores: List[DynInst] = []
        self.cycle = 0
        self.halted = False
        self._dcache_ports_used = 0
        if tracer is not None:
            # legacy convenience: tracer= is an ordinary stage probe
            self.attach_probe(tracer)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ---------------------------------------------------------------- probes

    @property
    def tracer(self) -> Optional[PipelineTracer]:
        """The first attached :class:`PipelineTracer` (None if absent)."""
        for probe in self._stage_probes:
            if isinstance(probe, PipelineTracer):
                return probe
        return None

    def attach_probe(self, probe) -> None:
        """Attach ``probe`` for every hook family its class overrides.

        A probe overriding :meth:`~repro.arch.probe.PipelineProbe.record`
        (or ``record_squash``) receives per-instruction stage events; one
        overriding ``on_cycle`` runs at the end of every cycle.  Attaching
        an observer with neither is an error (it would observe nothing).
        """
        stage = (overrides_hook(probe, "record")
                 or overrides_hook(probe, "record_squash"))
        cycle = overrides_hook(probe, "on_cycle")
        if not stage and not cycle:
            raise TypeError(
                f"{type(probe).__name__} overrides no probe hook "
                f"(record / record_squash / on_cycle)")
        if probe in self._stage_probes or probe in self._cycle_probes:
            raise ValueError(f"probe {probe!r} already attached")
        if stage:
            self._stage_probes.append(probe)
        if cycle:
            self._cycle_probes.append(probe)
        self._rebuild_dispatch()
        if overrides_hook(probe, "on_attach"):
            probe.on_attach(self)

    def detach_probe(self, probe) -> None:
        """Detach ``probe``; restores the no-probe fast path when last."""
        found = False
        for family in (self._stage_probes, self._cycle_probes):
            if probe in family:
                family.remove(probe)
                found = True
        if not found:
            raise ValueError(f"probe {probe!r} is not attached")
        self._rebuild_dispatch()
        if overrides_hook(probe, "on_detach"):
            probe.on_detach(self)

    def _rebuild_dispatch(self) -> None:
        """Recompute the stage-event dispatchers after attach/detach.

        One probe binds its methods directly (no wrapper call); several
        share a closure over an immutable snapshot of the probe list.
        No probes leaves the dispatchers ``None`` -- the zero-overhead
        fast path the hot loop tests for.
        """
        recorders = [probe for probe in self._stage_probes
                     if overrides_hook(probe, "record")]
        squashers = [probe for probe in self._stage_probes
                     if overrides_hook(probe, "record_squash")]
        if not recorders:
            self._record = None
        elif len(recorders) == 1:
            self._record = recorders[0].record
        else:
            snapshot = tuple(recorders)

            def fan_out(stage, dyn, cycle, _probes=snapshot):
                for probe in _probes:
                    probe.record(stage, dyn, cycle)
            self._record = fan_out
        if not squashers:
            self._record_squash = None
        elif len(squashers) == 1:
            self._record_squash = squashers[0].record_squash
        else:
            squash_snapshot = tuple(squashers)

            def fan_out_squash(dyn, _probes=squash_snapshot):
                for probe in _probes:
                    probe.record_squash(dyn)
            self._record_squash = fan_out_squash
        self.fetch_unit.record_stage = self._record

    # ------------------------------------------------------------------ run

    def run(self, max_cycles: Optional[int] = None) -> PipelineStats:
        """Run to the committed ``halt``; returns the statistics."""
        limit = max_cycles if max_cycles is not None \
            else self.config.max_cycles
        stats = self.stats
        stall_guard = 0
        while not self.halted:
            if self.cycle >= limit:
                raise SimulationTimeout(
                    f"no halt after {self.cycle} cycles "
                    f"({stats.committed} committed)")
            before = stats.committed
            self.step()
            if stats.committed == before:
                stall_guard += 1
                if stall_guard > 200_000:
                    raise SimulationTimeout(
                        f"pipeline stalled for {stall_guard} cycles at "
                        f"cycle {self.cycle} (rob head: {self.rob.head()!r},"
                        f" state: {self.controller.state})")
            else:
                stall_guard = 0
        return stats

    def step(self) -> None:
        """Advance the machine by one cycle."""
        self.cycle += 1
        stats = self.stats
        stats.cycles += 1
        self._dcache_ports_used = 0
        controller = self.controller
        controller.now = self.cycle
        state = controller.state
        if state is IQState.NORMAL:
            stats.cycles_normal += 1
        elif state is IQState.BUFFERING:
            stats.cycles_buffering += 1
        else:
            stats.cycles_reuse += 1
        if controller.gated:
            stats.gated_cycles += 1
        self._commit()
        if not self.halted:
            self._writeback()
            self._process_stores()
            self._process_loads()
            self._issue()
            self._dispatch()
            if not controller.gated:
                self._decode()
                if not controller.gated:    # decode may raise the gate
                    self.fetch_unit.cycle(self.cycle)
        if self._cycle_probes:
            for probe in self._cycle_probes:
                probe.on_cycle(self)

    # ---------------------------------------------------------------- commit

    def _commit(self) -> None:
        stats = self.stats
        budget = self.config.commit_width
        while budget:
            dyn = self.rob.head()
            if dyn is None or not dyn.done:
                break
            inst = dyn.inst
            if inst.is_store:
                if self._dcache_ports_used >= self.config.dcache_ports:
                    break
                self._dcache_ports_used += 1
                self.hierarchy.daccess(dyn.mem_addr, is_write=True)
                store_to_memory(self.mem_image, inst.op, dyn.mem_addr,
                                dyn.store_value)
                stats.dcache_store_accesses += 1
            self.rob.retire_head()
            dyn.committed = True
            if self._record is not None:
                self._record("commit", dyn, self.cycle)
            stats.committed += 1
            if dyn.from_reuse:
                stats.reuse_committed += 1
            stats.rob_reads += 1
            if inst.is_mem:
                self.lsq.release(dyn)
            dest = inst.dest
            if dest is not None:
                self.regfile.write(dest, dyn.value)
                self.rename.clear_producer(dest, dyn)
                stats.regfile_writes += 1
            if inst.is_control:
                stats.branches_committed += 1
                if inst.is_conditional_branch:
                    stats.cond_branches_committed += 1
                self.predictor.update(inst, dyn.pc, dyn.actual_taken,
                                      dyn.actual_target,
                                      direction_index=dyn.bpred_index)
            if inst.is_halt:
                self.halted = True
                return
            budget -= 1

    # ------------------------------------------------------------- writeback

    def _writeback(self) -> None:
        inflight = self._inflight
        now = self.cycle
        while inflight and inflight[0][0] <= now:
            dyn = heapq.heappop(inflight)[2]
            if dyn.squashed:
                continue
            self._complete(dyn)

    def _complete(self, dyn: DynInst) -> None:
        stats = self.stats
        dyn.done = True
        if self._record is not None:
            self._record("complete", dyn, self.cycle)
        stats.resultbus_writes += 1
        waiters = dyn.waiters
        if waiters:
            stats.iq_wakeups += 1
            wakeup = self.iq.wakeup
            for entry in waiters:
                if entry.in_queue and not entry.dyn.squashed:
                    wakeup(entry)
            dyn.waiters = None
        if dyn.is_control and dyn.mispredicted():
            self._recover(dyn)

    def _recover(self, dyn: DynInst) -> None:
        """Branch misprediction recovery (also the reuse exit path)."""
        stats = self.stats
        stats.mispredicts += 1
        target = dyn.actual_target if dyn.actual_taken \
            else dyn.pc + INSTRUCTION_BYTES
        squashed = self.rob.squash_younger_than(dyn.seq)
        if self._record_squash is not None:
            for victim in squashed:
                self._record_squash(victim)
        stats.squashed += len(squashed)
        stats.iq_removes += self.iq.squash_younger_than(dyn.seq)
        self.lsq.squash_younger_than(dyn.seq)
        self.rename.restore(dyn.rename_snapshot)
        self.predictor.restore_state(
            dyn.ras_snapshot,
            actual_taken=(dyn.actual_taken
                          if dyn.inst.is_conditional_branch else None))
        self.decoded.clear()
        self.fetch_unit.redirect(target, self.cycle)
        if self.controller.enabled:
            self.controller.on_mispredict(dyn)

    # ------------------------------------------------------------------ LSQ

    def _process_stores(self) -> None:
        """Capture store data whose producer has completed (STD half)."""
        if not self.pending_stores:
            return
        still: List[DynInst] = []
        for dyn in self.pending_stores:
            if dyn.squashed:
                continue
            producer, lreg = dyn.sources[1]
            if producer.committed:
                dyn.store_value = self.regfile.read(lreg)
                self._schedule(dyn, self.cycle + 1)
            elif producer.done:
                dyn.store_value = producer.value
                self._schedule(dyn, self.cycle + 1)
            else:
                still.append(dyn)
        self.pending_stores = still

    def _process_loads(self) -> None:
        if not self.pending_loads:
            return
        stats = self.stats
        still: List[DynInst] = []
        for dyn in self.pending_loads:
            if dyn.squashed:
                continue
            verdict, store = self.lsq.disambiguate(dyn)
            stats.lsq_searches += 1
            if verdict == LOAD_BLOCKED:
                stats.load_blocked_cycles += 1
                still.append(dyn)
            elif verdict == LOAD_FORWARD:
                dyn.value = forwarded_value(dyn.inst.op,
                                            store.store_value)
                stats.lsq_forwards += 1
                self._schedule(dyn, self.cycle + 1)
            else:
                if self._dcache_ports_used >= self.config.dcache_ports:
                    still.append(dyn)
                    continue
                self._dcache_ports_used += 1
                latency = self.hierarchy.daccess(dyn.mem_addr,
                                                 is_write=False)
                stats.dcache_load_accesses += 1
                dyn.value = load_from_memory(self.mem_image, dyn.inst.op,
                                             dyn.mem_addr)
                self._schedule(dyn, self.cycle + latency)
        self.pending_loads = still

    # ----------------------------------------------------------------- issue

    def _schedule(self, dyn: DynInst, finish_cycle: int) -> None:
        self._inflight_push(self._inflight, (finish_cycle, dyn.seq, dyn))

    def _issue(self) -> None:
        budget = self.config.issue_width
        iq = self.iq
        retry: List[IQEntry] = []
        now = self.cycle
        while budget:
            entry = iq.pop_ready()
            if entry is None:
                break
            if not self.fus.try_issue(entry.inst.op, now):
                retry.append(entry)
                continue
            self._execute(entry)
            budget -= 1
        for entry in retry:
            iq.requeue(entry)

    def _execute(self, entry: IQEntry) -> None:
        stats = self.stats
        dyn = entry.dyn
        inst = entry.inst
        op = inst.op
        dyn.issued = True
        if self._record is not None:
            self._record("issue", dyn, self.cycle)
        stats.issued += 1
        regread = self.regfile.read
        values = []
        for producer, lreg in dyn.sources:
            if producer is None or producer.committed:
                values.append(regread(lreg))
            else:
                values.append(producer.value)
        stats.regfile_reads += len(values)
        a = values[0] if values else 0
        b = values[1] if len(values) > 1 else 0

        fu = op.fu
        if fu is FuClass.IALU:
            stats.fu_int_ops += 1
        elif fu is FuClass.IMULT:
            stats.fu_mult_ops += 1
        elif fu is FuClass.FPALU:
            stats.fu_fp_ops += 1
        elif fu is FuClass.FPMULT:
            stats.fu_fpmult_ops += 1

        icls = op.icls
        if icls is InstrClass.LOAD:
            dyn.mem_addr = effective_address(a, inst.imm)
            dyn.mem_state = 1
            self.pending_loads.append(dyn)
        elif icls is InstrClass.STORE:
            # split store-address / store-data: the store issues as soon as
            # its base register is ready; the data operand is captured when
            # its producer completes (SimpleScalar's STA/STD behaviour).
            # Loads can disambiguate against the address immediately;
            # forwarding waits for ``done`` (= data available).
            dyn.mem_addr = effective_address(a, inst.imm)
            producer, lreg = dyn.sources[1]
            if producer is None or producer.committed:
                dyn.store_value = self.regfile.read(lreg)
                self._schedule(dyn, self.cycle + 1)
            elif producer.done:
                dyn.store_value = producer.value
                self._schedule(dyn, self.cycle + 1)
            else:
                self.pending_stores.append(dyn)
        elif inst.is_control:
            self._resolve_control(dyn, a, b)
            self._schedule(dyn, self.cycle + op.latency)
        elif icls is InstrClass.NOP or icls is InstrClass.HALT:
            self._schedule(dyn, self.cycle + 1)
        else:
            dyn.value = evaluate(op, a, b, inst.imm)
            self._schedule(dyn, self.cycle + op.latency)

        if entry.classification:
            entry.issue_state = True      # buffered: stays resident
        else:
            self.iq.remove(entry)
            stats.iq_removes += 1

    def _resolve_control(self, dyn: DynInst, a, b) -> None:
        inst = dyn.inst
        icls = inst.op.icls
        if icls is InstrClass.BRANCH:
            taken = branch_taken(inst.op, a, b)
            dyn.actual_taken = taken
            dyn.actual_target = inst.target if taken \
                else dyn.pc + INSTRUCTION_BYTES
        elif icls is InstrClass.JUMP:
            dyn.actual_taken = True
            dyn.actual_target = inst.target
        elif icls is InstrClass.CALL:
            dyn.actual_taken = True
            dyn.actual_target = inst.target
            dyn.value = dyn.pc + INSTRUCTION_BYTES
        elif icls is InstrClass.IJUMP:
            dyn.actual_taken = True
            dyn.actual_target = a
        else:                              # ICALL
            dyn.actual_taken = True
            dyn.actual_target = a
            dyn.value = dyn.pc + INSTRUCTION_BYTES

    # -------------------------------------------------------------- dispatch

    def _dispatch(self) -> None:
        if (self.controller.state is IQState.REUSE
                and not self.decoded):
            self._dispatch_reuse()
            return
        stats = self.stats
        budget = self.config.decode_width
        decoded = self.decoded
        while budget and decoded:
            dyn = decoded[0]
            inst = dyn.inst
            if self.rob.full:
                break
            if inst.is_mem and self.lsq.full:
                break
            if self.iq.full:
                if self.controller.enabled:
                    self.controller.on_dispatch_iq_full(dyn)
                break
            decoded.popleft()
            entry = IQEntry(inst, dyn)
            dyn.iq_entry = entry
            self._rename_and_allocate(dyn, entry)
            self.iq.insert(entry)
            stats.iq_inserts += 1
            if self.controller.enabled:
                self.controller.on_dispatch(dyn, entry)
                if self.controller.state is IQState.REUSE:
                    # the loop tail just dispatched and Code Reuse engaged:
                    # everything still queued in the front-end is the next
                    # iteration, which the reuse pointer will supply instead
                    self.fetch_unit.flush_queue()
                    self.decoded.clear()
                    return
            budget -= 1

    def _dispatch_reuse(self) -> None:
        """Code Reuse state: the reuse pointer is the dispatch source."""
        stats = self.stats
        controller = self.controller
        budget = self.config.decode_width
        while budget:
            entry = controller.peek_reuse()
            if entry is None:
                break
            inst = entry.inst
            if self.rob.full:
                break
            if inst.is_mem and self.lsq.full:
                break
            dyn = DynInst(self._next_seq(), inst, inst.pc)
            dyn.from_reuse = True
            if inst.is_control:
                dyn.pred_taken = entry.recorded_taken
                dyn.pred_target = entry.recorded_target
            dyn.iq_entry = entry
            entry.dyn = dyn
            entry.issue_state = False
            entry.ready = False
            self._rename_and_allocate(dyn, entry)
            if entry.pending == 0:
                self.iq.mark_ready(entry)
            controller.advance_reuse()
            stats.reuse_supplied += 1
            counter = REUSE_COUNTER_OF[inst.op.icls]
            setattr(stats, counter, getattr(stats, counter) + 1)
            stats.iq_partial_updates += 1
            stats.lrl_reads += 1
            budget -= 1

    def _rename_and_allocate(self, dyn: DynInst,
                             entry: Optional[IQEntry]) -> None:
        stats = self.stats
        inst = dyn.inst
        dyn.dispatched = True
        if self._record is not None:
            self._record("dispatch", dyn, self.cycle)
        stats.dispatched += 1
        stats.rob_writes += 1
        pending = 0
        sources = dyn.sources
        lookup = self.rename.lookup
        # a store's data operand (source index 1) does not gate issue: the
        # store issues on its base register alone (split STA/STD) and the
        # data is captured by _process_stores when its producer completes
        is_store = inst.is_store
        for position, lreg in enumerate(inst.srcs):
            stats.rename_lookups += 1
            producer = lookup(lreg)
            sources.append((producer, lreg))
            if is_store and position == 1:
                continue
            if producer is not None and not producer.done:
                pending += 1
                if producer.waiters is None:
                    producer.waiters = [entry]
                else:
                    producer.waiters.append(entry)
        if inst.dest is not None:
            self.rename.set_producer(inst.dest, dyn)
            stats.rename_writes += 1
        if inst.is_control:
            dyn.rename_snapshot = self.rename.snapshot()
            if dyn.ras_snapshot is None:
                # reuse-supplied instances never passed through fetch;
                # capture the (untouched-while-gated) predictor state now
                dyn.ras_snapshot = self.predictor.snapshot_state()
        if inst.is_mem:
            dyn.mem_size = access_size(inst.op)
            self.lsq.allocate(dyn)
            stats.lsq_inserts += 1
        self.rob.allocate(dyn)
        if entry is not None:
            entry.pending = pending

    # ---------------------------------------------------------------- decode

    def _decode(self) -> None:
        stats = self.stats
        budget = self.config.decode_width
        queue = self.fetch_unit.queue
        decoded = self.decoded
        controller = self.controller
        while budget and queue and len(decoded) < self._decode_buffer_cap:
            dyn = queue.popleft()
            stats.decoded += 1
            if dyn.predecoded:
                stats.predecoded_supplied += 1
            if self._record is not None:
                self._record("decode", dyn, self.cycle)
            decoded.append(dyn)
            if controller.enabled:
                controller.on_decode(dyn)
                if controller.gated:
                    # promote decision: the gate is up.  The fetch queue is
                    # retained -- if buffering is revoked before the loop
                    # tail dispatches, decode resumes from it with nothing
                    # lost; once reuse engages, dispatch flushes it.
                    return
            budget -= 1

    # ----------------------------------------------------------- final state

    def architectural_registers(self) -> List:
        """Committed register values (for oracle comparison)."""
        return self.regfile.as_list()
