"""Instruction fetch unit.

Per (non-gated) cycle the fetch unit:

* performs one I-cache/ITLB access for the current fetch line (a miss
  stalls fetch until the fill completes),
* pulls up to ``fetch_width`` instructions into the fetch queue, following
  predicted-taken branches within the cycle (SimpleScalar's idealised fetch
  model, which the paper's baseline uses),
* consults the branch predictor for every control instruction it fetches
  (direction, target, speculative RAS effects); a predicted-taken
  instruction that misses in the BTB costs a one-cycle bubble while decode
  produces the target.

During the paper's Code Reuse state the pipeline simply does not call
:meth:`FetchUnit.cycle` -- that *is* the front-end gating, and it is why the
I-cache, ITLB and predictor activity counters stop advancing while reuse
supplies instructions.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from repro.arch.branch.predictor import BranchPredictor
from repro.arch.config import MachineConfig
from repro.arch.dyninst import DynInst
from repro.arch.loopcache import LoopCacheController
from repro.arch.mem.hierarchy import MemoryHierarchy
from repro.arch.stats import PipelineStats
from repro.isa.program import INSTRUCTION_BYTES, Program


class FetchUnit:
    """Fetch stage with fetch queue, I-cache timing and fetch-time prediction."""

    __slots__ = (
        "record_stage", "program", "config", "hierarchy", "predictor",
        "next_seq", "stats", "pc", "queue", "stall_until", "_line_mask",
        "loop_cache", "_loop_cache_decoded",
    )

    def __init__(self, program: Program, config: MachineConfig,
                 hierarchy: MemoryHierarchy, predictor: BranchPredictor,
                 seq_allocator: Callable[[], int], stats: PipelineStats):
        #: Stage-event dispatcher, kept in sync with the owning pipeline's
        #: probe set (None when no stage probes are attached).
        self.record_stage = None
        self.program = program
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.next_seq = seq_allocator
        self.stats = stats
        self.pc = program.entry_point
        self.queue: Deque[DynInst] = deque()
        self.stall_until = 0
        self._line_mask = ~(config.il1.line_bytes - 1)
        #: Optional related-work loop cache (None unless configured).
        self.loop_cache = (LoopCacheController(config.loop_cache_size)
                           if config.loop_cache_size else None)
        self._loop_cache_decoded = config.loop_cache_decoded

    @property
    def queue_full(self) -> bool:
        """True when the fetch queue cannot accept more instructions."""
        return len(self.queue) >= self.config.fetch_queue_size

    def cycle(self, now: int) -> None:
        """Fetch up to ``fetch_width`` instructions in cycle ``now``."""
        if self.stall_until > now:
            self.stats.fetch_stall_cycles += 1
            return
        if self.queue_full:
            return
        inst = self.program.inst_at(self.pc)
        if inst is None:
            # off the text segment (deep wrong path); wait for a redirect
            self.stats.fetch_stall_cycles += 1
            return

        # a warm loop cache serves in-range fetch cycles without touching
        # the I-cache or ITLB (the related-work baseline's entire saving)
        loop_cache = self.loop_cache
        supplying = (loop_cache is not None
                     and loop_cache.can_supply(self.pc))
        if not supplying:
            # one I-cache access covers this cycle's fetch line
            latency = self.hierarchy.ifetch(self.pc)
            self.stats.icache_fetch_cycles += 1
            if latency > self.config.il1.hit_latency:
                # miss: deliver nothing now; the line is present on resume
                self.stall_until = now + latency
                return

        # SimpleScalar-style idealised fetch: up to fetch_width instructions
        # per cycle, following predicted-taken branches within the cycle
        # (one I-cache access is charged per fetch cycle).  A predicted-
        # taken instruction that misses in the BTB still costs a bubble.
        fetched = 0
        while fetched < self.config.fetch_width and not self.queue_full:
            if supplying and not loop_cache.can_supply(self.pc):
                break                    # left the cached loop mid-cycle
            inst = self.program.inst_at(self.pc)
            if inst is None:
                break
            if loop_cache is not None and not supplying:
                loop_cache.capture(self.pc)
            dyn = DynInst(self.next_seq(), inst, self.pc)
            if supplying and self._loop_cache_decoded:
                dyn.predecoded = True
            if self.record_stage is not None:
                self.record_stage("fetch", dyn, now)
            self.stats.fetched += 1
            fetched += 1
            if inst.is_control:
                prediction = self.predictor.predict(inst, self.pc)
                dyn.pred_taken = prediction.taken
                dyn.pred_target = prediction.target
                dyn.bpred_index = prediction.direction_index
                # capture speculative predictor state (RAS, gshare
                # history) right after this prediction for exact recovery
                dyn.ras_snapshot = self.predictor.snapshot_state()
                self.queue.append(dyn)
                if prediction.taken:
                    if (loop_cache is not None
                            and inst.is_direct_control
                            and not inst.is_call
                            and inst.target is not None
                            and inst.target <= self.pc):
                        loop_cache.on_backward_branch(self.pc,
                                                      inst.target)
                    self.pc = prediction.target
                else:
                    self.pc += INSTRUCTION_BYTES
                if prediction.btb_bubble:
                    self.stats.btb_bubbles += 1
                    self.stall_until = now + 2   # one bubble cycle
                    break
            else:
                self.queue.append(dyn)
                self.pc += INSTRUCTION_BYTES
        if supplying and fetched:
            loop_cache.note_supply(fetched)

    def redirect(self, target: int, now: int) -> None:
        """Squash the fetch queue and restart at ``target`` next cycle."""
        self.queue.clear()
        self.pc = target
        self.stall_until = now + 1

    def flush_queue(self) -> None:
        """Drop queued instructions (used when the front-end gate goes up)."""
        self.queue.clear()
