"""The composed memory hierarchy.

Wires up L1 I-cache, L1 D-cache, a shared unified L2 and DRAM, plus the two
TLBs, and exposes the two operations the pipeline needs:

* :meth:`MemoryHierarchy.ifetch` -- one instruction-fetch access (charged
  once per fetch cycle; an I-cache line feeds multiple instructions),
* :meth:`MemoryHierarchy.daccess` -- one data access from the LSQ.

Both return total latency in cycles.  All hit/miss/access counters needed by
the power model live on the member structures.
"""

from __future__ import annotations

from repro.arch.config import MachineConfig
from repro.arch.mem.cache import Cache, DramModel
from repro.arch.mem.tlb import Tlb


class MemoryHierarchy:
    """L1I + L1D + unified L2 + DRAM, with ITLB and DTLB."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.dram = DramModel(config.mem_first_chunk, config.mem_next_chunk)
        self.l2 = Cache(config.l2, next_level=self.dram)
        self.il1 = Cache(config.il1, next_level=self.l2)
        self.dl1 = Cache(config.dl1, next_level=self.l2)
        self.itlb = Tlb(config.itlb)
        self.dtlb = Tlb(config.dtlb)

    def ifetch(self, pc: int) -> int:
        """Fetch-side access for the line containing ``pc``; returns latency."""
        latency = self.itlb.access(pc)
        latency += self.il1.access(pc, is_write=False)
        return latency

    def daccess(self, addr: int, is_write: bool) -> int:
        """Data-side access; returns latency."""
        latency = self.dtlb.access(addr)
        latency += self.dl1.access(addr, is_write=is_write)
        return latency
