"""Set-associative cache timing model.

Tags only -- no data array (values come from the functional memory image).
Write-back, write-allocate, true LRU.  ``access`` returns the latency of the
access including any time spent in the next level, which makes composing
levels trivial: the L1 is constructed with the L2 as its ``next_level``, and
the L2 with a DRAM model.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.config import CacheConfig


class DramModel:
    """Flat DRAM latency: first chunk + per-remaining-chunk cost.

    The paper's Table 1: 80 cycles for the first chunk, 8 cycles for each
    remaining chunk of the line being filled.
    """

    def __init__(self, first_chunk: int = 80, next_chunk: int = 8,
                 chunk_bytes: int = 8):
        self.first_chunk = first_chunk
        self.next_chunk = next_chunk
        self.chunk_bytes = chunk_bytes
        self.accesses = 0

    def access(self, addr: int, size: int, is_write: bool) -> int:
        """Latency to move ``size`` bytes to/from DRAM."""
        self.accesses += 1
        chunks = max(1, (size + self.chunk_bytes - 1) // self.chunk_bytes)
        return self.first_chunk + (chunks - 1) * self.next_chunk


class Cache:
    """One level of set-associative cache (timing/activity only)."""

    def __init__(self, config: CacheConfig, next_level=None):
        self.config = config
        self.name = config.name
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self.line_bytes = config.line_bytes
        self.hit_latency = config.hit_latency
        self.next_level = next_level
        self._offset_bits = config.line_bytes.bit_length() - 1
        if 1 << self._offset_bits != config.line_bytes:
            raise ValueError(f"{self.name}: line size must be a power of two")
        self._set_mask = self.num_sets - 1
        if self.num_sets & self._set_mask:
            raise ValueError(f"{self.name}: set count must be a power of two")
        # each set: list of [tag, dirty] in MRU..LRU order
        self._sets = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, addr: int):
        line = addr >> self._offset_bits
        return line >> (self.num_sets.bit_length() - 1), line & self._set_mask

    def access(self, addr: int, is_write: bool = False) -> int:
        """Access one address; returns total latency in cycles."""
        self.accesses += 1
        tag, set_index = self._locate(addr)
        ways = self._sets[set_index]
        for position, way in enumerate(ways):
            if way[0] == tag:
                self.hits += 1
                if is_write:
                    way[1] = True
                if position:
                    ways.insert(0, ways.pop(position))
                return self.hit_latency
        # miss: fill from the next level (write-allocate)
        self.misses += 1
        latency = self.hit_latency
        if self.next_level is not None:
            if isinstance(self.next_level, Cache):
                latency += self.next_level.access(addr, is_write=False)
            else:
                latency += self.next_level.access(
                    addr, self.line_bytes, is_write=False)
        if len(ways) >= self.assoc:
            victim = ways.pop()
            if victim[1]:
                self.writebacks += 1
        ways.insert(0, [tag, bool(is_write)])
        return latency

    def probe(self, addr: int) -> bool:
        """True if the address currently hits (no state change, no counters)."""
        tag, set_index = self._locate(addr)
        return any(way[0] == tag for way in self._sets[set_index])

    def flush(self) -> None:
        """Invalidate every line (dirty lines count as writebacks)."""
        for ways in self._sets:
            for way in ways:
                if way[1]:
                    self.writebacks += 1
            ways.clear()

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed."""
        return self.misses / self.accesses if self.accesses else 0.0

    def line_address(self, addr: int) -> int:
        """The line-aligned base address containing ``addr``."""
        return addr & ~(self.line_bytes - 1)
