"""TLB timing model.

Set-associative, LRU, page-granular.  Misses charge a fixed penalty (the
paper's Table 1 configuration: ITLB 16 sets x 4-way, DTLB 32 sets x 4-way,
4 KB pages, 30-cycle miss penalty) and install the translation -- the page
tables themselves are not modelled, matching SimpleScalar.
"""

from __future__ import annotations

from repro.arch.config import TlbConfig


class Tlb:
    """Set-associative TLB (timing/activity only)."""

    def __init__(self, config: TlbConfig):
        self.config = config
        self.name = config.name
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self.miss_penalty = config.miss_penalty
        self._page_bits = config.page_bytes.bit_length() - 1
        if 1 << self._page_bits != config.page_bytes:
            raise ValueError(f"{self.name}: page size must be a power of two")
        self._set_mask = self.num_sets - 1
        if self.num_sets & self._set_mask:
            raise ValueError(f"{self.name}: set count must be a power of two")
        self._sets = [[] for _ in range(self.num_sets)]  # tags, MRU..LRU
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate one address; returns the added latency (0 on a hit)."""
        self.accesses += 1
        page = addr >> self._page_bits
        set_index = page & self._set_mask
        tag = page >> (self.num_sets.bit_length() - 1)
        ways = self._sets[set_index]
        for position, way_tag in enumerate(ways):
            if way_tag == tag:
                self.hits += 1
                if position:
                    ways.insert(0, ways.pop(position))
                return 0
        self.misses += 1
        if len(ways) >= self.assoc:
            ways.pop()
        ways.insert(0, tag)
        return self.miss_penalty

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed."""
        return self.misses / self.accesses if self.accesses else 0.0
