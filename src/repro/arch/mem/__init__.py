"""Memory-hierarchy timing models: caches, TLBs and DRAM.

These structures model *timing and activity only*; data values live in the
functional :class:`~repro.isa.memory.SparseMemory` image.  This split (the
same one SimpleScalar uses) keeps the caches cheap while still producing the
hit/miss behaviour and access counts the power model consumes.
"""

from repro.arch.mem.cache import Cache
from repro.arch.mem.hierarchy import MemoryHierarchy
from repro.arch.mem.tlb import Tlb

__all__ = ["Cache", "MemoryHierarchy", "Tlb"]
