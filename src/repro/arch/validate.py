"""Microarchitectural invariant checking.

:func:`validate` inspects a live :class:`~repro.arch.pipeline.Pipeline`
mid-run and raises :class:`InvariantViolation` if any structural invariant
is broken.  :class:`InvariantProbe` packages it as a cycle probe (see
:mod:`repro.arch.probe`), so validation attaches to any pipeline with
``pipeline.attach_probe(InvariantProbe())``; :func:`run_validated` is the
convenience wrapper the test suite uses.  Cycle-by-cycle validation turns
subtle state-corruption bugs into immediate, diagnosable failures instead
of wrong results thousands of cycles later.

Checked invariants:

* ROB entries are in strictly increasing sequence order, dispatched, not
  squashed, within capacity; only the non-halt head may be committed
  mid-cycle,
* the LSQ is an ordered subsequence of the ROB containing exactly its
  memory instructions,
* issue-queue occupancy respects capacity; resident entries are live
  (a non-buffered entry's instance must be un-issued and un-squashed; a
  buffered entry's issue-state bit must equal its instance's issued flag),
* every rename-map producer is an in-flight ROB instruction whose
  destination is the mapped register,
* the controller's gate is only up while buffering has promoted or reuse
  is active, the reuse pointer is in range and points at an entry whose
  classification bit is set, and buffered entries never exceed the queue,
* state-cycle counters add up.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.probe import PipelineProbe
from repro.core.states import IQState


class InvariantViolation(AssertionError):
    """A structural invariant of the machine was broken."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def validate(pipeline) -> None:
    """Check every structural invariant of a live pipeline."""
    _validate_rob(pipeline)
    _validate_lsq(pipeline)
    _validate_issue_queue(pipeline)
    _validate_rename(pipeline)
    _validate_controller(pipeline)
    _validate_stats(pipeline)


def _validate_rob(pipeline) -> None:
    rob = pipeline.rob
    _check(len(rob) <= rob.capacity, "ROB over capacity")
    previous_seq = 0
    for position, dyn in enumerate(rob.entries):
        _check(dyn.seq > previous_seq,
               f"ROB order violated at position {position}")
        previous_seq = dyn.seq
        _check(dyn.dispatched, f"undispatched instruction in ROB: {dyn!r}")
        _check(not dyn.squashed, f"squashed instruction in ROB: {dyn!r}")
        _check(not dyn.committed,
               f"committed instruction still in ROB: {dyn!r}")
        if dyn.done and dyn.inst.dest is None and not dyn.inst.is_store:
            _check(dyn.inst.is_control or dyn.value is None
                   or dyn.inst.op.icls.name in ("NOP", "HALT"),
                   f"valueless instruction carries a value: {dyn!r}")


def _validate_lsq(pipeline) -> None:
    lsq = pipeline.lsq
    _check(len(lsq) <= lsq.capacity, "LSQ over capacity")
    rob_mem = [d for d in pipeline.rob.entries if d.inst.is_mem]
    lsq_entries = list(lsq.entries)
    _check(lsq_entries == rob_mem,
           "LSQ is not the ROB's memory-instruction subsequence")


def _validate_issue_queue(pipeline) -> None:
    iq = pipeline.iq
    _check(iq.occupancy <= iq.capacity, "issue queue over capacity")
    buffered = set(pipeline.controller.buffered)
    for entry in iq.entries:
        _check(entry.in_queue, "entry in queue set with in_queue clear")
        dyn = entry.dyn
        _check(dyn is not None, "queue entry without an instance")
        if entry.classification:
            _check(entry in buffered,
                   "classification bit set on an untracked entry")
            _check(entry.issue_state == dyn.issued,
                   f"issue-state bit out of sync: {entry!r}")
        else:
            _check(not dyn.issued,
                   f"issued non-buffered entry still resident: {entry!r}")
            _check(not dyn.squashed,
                   f"squashed entry still resident: {entry!r}")
        _check(entry.pending >= 0, f"negative pending count: {entry!r}")


def _validate_rename(pipeline) -> None:
    in_flight = {d.seq: d for d in pipeline.rob.entries}
    for lreg, producer in enumerate(pipeline.rename.table):
        if producer is None:
            continue
        _check(not producer.squashed,
               f"rename map points at squashed producer for r{lreg}")
        # a committed producer is legal: misprediction recovery restores
        # snapshots whose older producers may have committed meanwhile (a
        # consumer then simply reads the architectural register file)
        if not producer.committed:
            _check(producer.seq in in_flight,
                   f"rename map points outside the ROB for r{lreg}")
        _check(producer.inst.dest == lreg,
               f"rename map register mismatch for r{lreg}")


def _validate_controller(pipeline) -> None:
    controller = pipeline.controller
    iq = pipeline.iq
    state = controller.state
    if not controller.enabled:
        _check(state is IQState.NORMAL,
               "reuse disabled but state not Normal")
        _check(not controller.gated, "reuse disabled but gate is up")
        return
    _check(len(controller.buffered) <= iq.capacity,
           "more buffered entries than queue capacity")
    if controller.gated:
        _check(state is IQState.REUSE
               or (state is IQState.BUFFERING
                   and controller.pending_promote),
               f"gate up in state {state} without pending promote")
    if state is IQState.REUSE:
        _check(controller.gated, "Code Reuse without the gate up")
        _check(controller.buffered, "Code Reuse with nothing buffered")
        _check(0 <= controller.reuse_pointer < len(controller.buffered),
               "reuse pointer out of range")
        pointed = controller.buffered[controller.reuse_pointer]
        _check(pointed.classification,
               "reuse pointer at an entry with classification bit clear")
    if state is IQState.NORMAL:
        _check(not controller.buffered,
               "Normal state with buffered entries")
        for entry in iq.entries:
            _check(not entry.classification,
                   "classification bit survives in Normal state")
    _check(controller.call_depth >= 0, "negative call depth")


def _validate_stats(pipeline) -> None:
    stats = pipeline.stats
    _check(stats.cycles_normal + stats.cycles_buffering
           + stats.cycles_reuse == stats.cycles,
           "state cycle counters do not add up")
    _check(stats.gated_cycles <= stats.cycles, "gated cycles > cycles")
    _check(stats.committed <= stats.dispatched,
           "more commits than dispatches")


class InvariantProbe(PipelineProbe):
    """Cycle probe running :func:`validate` every ``every`` cycles.

    The halting cycle is always validated regardless of ``every``, so the
    final machine state is never left unchecked.
    """

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.checks = 0

    def on_cycle(self, pipeline) -> None:
        if pipeline.cycle % self.every == 0 or pipeline.halted:
            self.checks += 1
            validate(pipeline)


def run_validated(pipeline, max_cycles: Optional[int] = None,
                  every: int = 1):
    """Run a pipeline to completion, validating every ``every`` cycles.

    Returns the pipeline's statistics, like ``Pipeline.run``.
    """
    limit = max_cycles if max_cycles is not None \
        else pipeline.config.max_cycles
    probe = InvariantProbe(every)
    pipeline.attach_probe(probe)
    try:
        while not pipeline.halted:
            if pipeline.cycle >= limit:
                raise InvariantViolation(
                    f"no halt after {pipeline.cycle} validated cycles")
            pipeline.step()
    finally:
        pipeline.detach_probe(probe)
    return pipeline.stats
