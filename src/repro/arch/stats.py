"""Activity counters collected by the pipeline.

Every counter here is either reported directly (cycles, committed
instructions, gated cycles, ...) or consumed by the power model in
:mod:`repro.power` to compute per-component energy.  Keeping them as plain
integer attributes keeps the simulator's hot loop cheap.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.isa.opcodes import InstrClass

#: Counter catalog: group name -> counters in that group.  This is the
#: one authoritative enumeration of the simulator's activity counters;
#: the telemetry metric registry (:meth:`PipelineStats.to_registry`) and
#: the docs metric catalog are both generated from it.
COUNTER_GROUPS: Dict[str, Tuple[str, ...]] = {
    "global": ("cycles", "committed", "fetched", "decoded", "dispatched",
               "issued", "squashed"),
    "control_flow": ("branches_committed", "cond_branches_committed",
                     "mispredicts", "reuse_mispredicts"),
    "front_end": ("icache_fetch_cycles", "btb_bubbles",
                  "fetch_stall_cycles", "predecoded_supplied"),
    "reuse": ("gated_cycles", "cycles_normal", "cycles_buffering",
              "cycles_reuse", "loop_detections", "buffering_started",
              "promotions", "revokes", "buffering_revokes",
              "revokes_inner_loop", "revokes_exit", "revokes_iq_full",
              "revokes_mispredict", "nblt_lookups", "nblt_hits",
              "nblt_inserts", "reuse_supplied", "buffered_instructions",
              "buffered_iterations"),
    "reuse_types": ("reuse_committed", "reuse_supplied_ialu",
                    "reuse_supplied_imul", "reuse_supplied_fpalu",
                    "reuse_supplied_fpmul", "reuse_supplied_load",
                    "reuse_supplied_store", "reuse_supplied_control",
                    "reuse_supplied_other"),
    # trace-reuse controller (reuse_mode="trace"; all zero in loop mode)
    "trace": ("trace_detections", "tht_lookups", "tht_hits",
              "revokes_divergence"),
    "issue_queue": ("iq_inserts", "iq_removes", "iq_wakeups",
                    "iq_partial_updates", "lrl_writes", "lrl_reads"),
    "backend": ("rob_writes", "rob_reads", "lsq_inserts", "lsq_searches",
                "lsq_forwards", "regfile_reads", "regfile_writes",
                "fu_int_ops", "fu_mult_ops", "fu_fp_ops", "fu_fpmult_ops",
                "resultbus_writes", "rename_lookups", "rename_writes",
                "dcache_load_accesses", "dcache_store_accesses",
                "load_blocked_cycles"),
}


#: Instruction-type buckets for the per-type reuse-contribution
#: breakdown.  Multiplies and divides share a bucket (both are rare and
#: long-latency), as do the five control-flow classes; NOP/HALT land in
#: ``other``.  The static predictor in :mod:`repro.analysis.predict`
#: bins candidate loop bodies with the same table so static and dynamic
#: breakdowns are directly comparable.
REUSE_TYPE_BUCKETS: Tuple[str, ...] = (
    "ialu", "imul", "fpalu", "fpmul", "load", "store", "control", "other")

#: InstrClass -> bucket name.
REUSE_BUCKET_OF: Dict[InstrClass, str] = {
    InstrClass.IALU: "ialu",
    InstrClass.IMUL: "imul",
    InstrClass.IDIV: "imul",
    InstrClass.FPALU: "fpalu",
    InstrClass.FPMUL: "fpmul",
    InstrClass.FPDIV: "fpmul",
    InstrClass.LOAD: "load",
    InstrClass.STORE: "store",
    InstrClass.BRANCH: "control",
    InstrClass.JUMP: "control",
    InstrClass.CALL: "control",
    InstrClass.IJUMP: "control",
    InstrClass.ICALL: "control",
    InstrClass.NOP: "other",
    InstrClass.HALT: "other",
}

#: InstrClass -> PipelineStats counter attribute (hot-path table).
REUSE_COUNTER_OF: Dict[InstrClass, str] = {
    cls: f"reuse_supplied_{bucket}" for cls, bucket in REUSE_BUCKET_OF.items()
}

#: InstrClass -> bucket index into :data:`REUSE_TYPE_BUCKETS` (the array
#: engine predecodes this into a per-slot column).
REUSE_BUCKET_INDEX: Dict[InstrClass, int] = {
    cls: REUSE_TYPE_BUCKETS.index(bucket)
    for cls, bucket in REUSE_BUCKET_OF.items()
}


class PipelineStats:
    """Counters for one simulation run."""

    # The slot layout is generated from the catalog so the two can never
    # drift apart; attribute access stays a plain slot lookup.
    __slots__ = tuple(name for group in COUNTER_GROUPS.values()
                      for name in group)

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def gated_fraction(self) -> float:
        """Fraction of total cycles with the front-end gated (Figure 5)."""
        return self.gated_cycles / self.cycles if self.cycles else 0.0

    @property
    def revoke_rate(self) -> float:
        """Buffering attempts revoked *during buffering* (the NBLT metric).

        Normal reuse exits (the loop simply ended) also pass through the
        revoke path but are not buffering failures and are excluded here --
        this is the rate the paper reports the NBLT cutting from ~40 % to
        below 10 %.
        """
        attempts = self.buffering_started
        return self.buffering_revokes / attempts if attempts else 0.0

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict (for reports and tests)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def to_registry(self, registry=None, **labels):
        """Export every counter into a telemetry metric registry.

        Each counter becomes a ``sim_<name>`` Counter labelled with its
        catalog ``group`` (plus any extra ``labels``); IPC and the gated
        fraction are exported as gauges.  Imports lazily so the hot
        timing path never touches :mod:`repro.telemetry`.
        """
        from repro.telemetry.metrics import MetricRegistry

        registry = registry if registry is not None else MetricRegistry()
        for group, names in COUNTER_GROUPS.items():
            for name in names:
                registry.counter(
                    f"sim_{name}",
                    help=f"pipeline counter {name} ({group} group)",
                ).inc(getattr(self, name), group=group, **labels)
        contribution = registry.counter(
            "sim_reuse_contribution",
            help="instructions supplied from the reuse buffer, split by "
                 "instruction-type bucket (see docs/trace_reuse.md)")
        for bucket in REUSE_TYPE_BUCKETS:
            contribution.inc(getattr(self, f"reuse_supplied_{bucket}"),
                             type=bucket, **labels)
        registry.gauge(
            "sim_ipc", help="committed instructions per cycle",
        ).set(self.ipc, **labels)
        registry.gauge(
            "sim_gated_fraction",
            help="fraction of cycles with the front-end gated",
        ).set(self.gated_fraction, **labels)
        return registry

    def __repr__(self) -> str:
        return (
            f"<PipelineStats cycles={self.cycles} committed={self.committed} "
            f"ipc={self.ipc:.3f} gated={self.gated_fraction:.1%}>"
        )
