"""The array-based pipeline core (the no-probe fast path).

:class:`FastPipeline` executes the exact machine of
:class:`repro.arch.pipeline.Pipeline` -- same reverse stage order, same
stall rules, same reuse-controller state machine, same statistics -- but
keeps every piece of in-flight state in preallocated parallel columns
indexed by integer slot id instead of per-instruction objects:

* dynamic instructions (the ROB/rename/LSQ payload) live in ``_d_*``
  columns; a *dyn slot* is recycled through a free list the moment its
  instruction commits or is squashed,
* issue-queue entries live in ``_e_*`` columns keyed by *entry slot*;
  buffered (classification-bit) entries persist across dynamic instances
  exactly like the object core's ``IQEntry``,
* static per-instruction facts (flags, latencies, operand registers,
  execution closures) come from the program's shared
  :class:`~repro.arch.fastcore.image.CoreImage` predecode,
* rename-map cells hold the producer's packed identity
  ``(seq << slot_bits) | slot`` (``_d_packed``); a stale reference
  (packed mismatch after slot recycling) proves the producer already
  committed,
* heaps carry single packed ints -- ``(finish << 45) | packed`` for the
  result bus, ``(seq << entry_bits) | entry`` for the ready queue --
  and discard stale records lazily.  Sequence numbers are unique per
  dynamic instance, so the int encodings sort exactly like the object
  core's tuples,
* operand values are captured into ``_e_a``/``_e_b`` at rename (producer
  already done or committed) or at wakeup (producer completes later), so
  issue is two list reads.  A store's data operand keeps its rename
  reference (``_d_s1ref``) and resolves at execute time instead, exactly
  like the object core's late store-data read.

Leaf models with no per-instruction churn -- the memory hierarchy, the
branch predictor, the loop cache, the NBLT, the LRL, functional memory
and the architectural register file -- are the *real* objects shared
with the object core, so timing and counters agree to the byte.

Probes need per-instruction lifecycle objects, so a probe attached
before the first cycle transparently swaps in a delegate object core;
attaching after the core has started is an error.  See
``docs/pipeline.md``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional

from repro.arch.branch.predictor import BranchPredictor
from repro.arch.config import MachineConfig
from repro.arch.fastcore.image import (
    F_BACKWARD,
    F_CALL,
    F_COND,
    F_CONTROL,
    F_HALT,
    F_LC_TRIGGER,
    F_LOAD,
    F_MEM,
    F_RETURN,
    F_STORE,
    image_for,
)
from repro.arch.loopcache import LoopCacheController
from repro.arch.mem.hierarchy import MemoryHierarchy
from repro.arch.pipeline import Pipeline, SimulationTimeout
from repro.arch.regfile import RegisterFile
from repro.arch.stats import PipelineStats
from repro.arch.trace import PipelineTracer
from repro.core import controller as _controller_mod
from repro.core.controller import ControllerEvent
from repro.core.lrl import LogicalRegisterList
from repro.core.nblt import NonBufferableLoopTable
from repro.core.states import IQState, check_transition
from repro.core.trace_controller import TraceHeadTable
from repro.isa.memory import SparseMemory
from repro.isa.program import INSTRUCTION_BYTES, Program
from repro.isa.semantics import forwarded_value

# The slot engine hard-codes 4-byte text addressing (``off >> 2``).
assert INSTRUCTION_BYTES == 4

# Result-bus heap records pack ``(finish_cycle << 45) | packed_identity``.
# 45 bits leave room for seq < 2**(45 - slot_bits) dynamic instances --
# around 2**35 with default capacities, far beyond any cycle limit.
_FSHIFT = 45
_PMASK = (1 << _FSHIFT) - 1

_ST_NORMAL = IQState.NORMAL
_ST_BUFFERING = IQState.BUFFERING
_ST_REUSE = IQState.REUSE


class _FetchView:
    """The slice of the fetch unit activity capture and drivers read."""

    __slots__ = ("loop_cache",)

    def __init__(self, loop_cache: Optional[LoopCacheController]):
        self.loop_cache = loop_cache


class FastControllerView:
    """Read-only controller facade over the core's flat controller state.

    Exposes the observable surface of
    :class:`repro.core.controller.ReuseController` (state, gate, event and
    transition logs, NBLT/LRL) without the per-entry bookkeeping objects.
    """

    __slots__ = ("_core",)

    def __init__(self, core: "FastPipeline"):
        self._core = core

    @property
    def enabled(self) -> bool:
        return self._core.config.reuse_enabled

    @property
    def state(self) -> IQState:
        return self._core._state

    @property
    def gated(self) -> bool:
        return self._core._gated

    @property
    def events(self) -> List[ControllerEvent]:
        return self._core._events

    @property
    def transitions(self) -> List:
        return self._core._transitions

    @property
    def nblt(self) -> NonBufferableLoopTable:
        return self._core.nblt

    @property
    def tht(self) -> TraceHeadTable:
        return self._core._tht

    @property
    def lrl(self) -> LogicalRegisterList:
        return self._core.lrl

    def iter_events_since(self, cursor: int):
        """New events appended since ``cursor``, plus the new cursor."""
        log = self._core._events
        if cursor >= len(log):
            return (), cursor
        return log[cursor:], len(log)


class FastPipeline:
    """Cycle-level out-of-order core on flat slot columns."""

    __slots__ = (
        "program", "config", "mem_image", "stats", "hierarchy", "predictor",
        "regfile", "nblt", "lrl", "controller", "fetch_unit",
        "cycle", "halted",
        "_img", "_seq", "_pc", "_stall_until",
        "_started", "_delegate", "_loop_cache", "_lc_decoded",
        "_cap", "_ecap", "_slot_bits", "_smask",
        "_d_idx", "_d_seq", "_d_packed", "_d_pc",
        "_d_pred_taken", "_d_pred_target",
        "_d_actual_taken", "_d_actual_target", "_d_bpred",
        "_d_issued", "_d_done", "_d_committed", "_d_squashed",
        "_d_from_reuse", "_d_predecoded", "_d_value", "_d_store_value",
        "_d_waiters", "_d_rename_snap", "_d_ras_snap",
        "_d_s1ref", "_d_mem_addr", "_d_mem_size", "_d_session",
        "_e_idx", "_e_dslot", "_e_dseq", "_e_pending", "_e_ready",
        "_e_class", "_e_istate", "_e_inq", "_e_buf",
        "_e_a", "_e_b", "_e_rtaken", "_e_rtarget",
        "_dfree", "_efree", "_rename_table",
        "_rob", "_lsq", "_sq", "_fq", "_decoded", "_iq_set",
        "_ready_heap", "_inflight", "_pending_loads", "_pending_stores",
        "_fu_free",
        "_state", "_gated", "_c_head", "_c_tail", "_c_buffered",
        "_c_call_depth", "_c_iter_counter", "_c_last_size",
        "_c_iters_buffered", "_c_pending_promote", "_c_promote_slot",
        "_c_promote_seq", "_c_ptr", "_c_next_eid", "_c_session",
        "_c_undispatched", "_c_supplied", "_transitions", "_events",
        "_tht", "_t_obs_head", "_t_obs", "_t_obs_len", "_t_ref",
        "_t_ref_idx",
    )

    def __init__(self, program: Program, config: MachineConfig,
                 memory: Optional[SparseMemory] = None,
                 tracer: Optional[PipelineTracer] = None):
        self.program = program
        self.config = config
        self.mem_image = memory if memory is not None \
            else program.initial_memory()
        self.stats = PipelineStats()
        self.hierarchy = MemoryHierarchy(config)
        self.predictor = BranchPredictor(
            config.bimod_size, config.btb_sets, config.btb_assoc,
            config.ras_size, kind=config.bpred_kind,
            history_bits=config.bpred_history_bits)
        self.regfile = RegisterFile()
        self.nblt = NonBufferableLoopTable(config.nblt_size)
        self.lrl = LogicalRegisterList(config.iq_size)
        self._loop_cache = (LoopCacheController(config.loop_cache_size)
                            if config.loop_cache_size else None)
        self._lc_decoded = config.loop_cache_decoded
        self.fetch_unit = _FetchView(self._loop_cache)
        self.controller = FastControllerView(self)
        self._img = image_for(program)

        self.cycle = 0
        self.halted = False
        self._seq = 0
        self._pc = program.entry_point
        self._stall_until = 0
        self._started = False
        self._delegate: Optional[Pipeline] = None

        # dyn slots: every in-flight dynamic instruction is in exactly one
        # of {fetch queue, decode buffer, ROB}, so this capacity can never
        # be exhausted (one slot may leak at the final halt).
        cap = (config.rob_size + config.fetch_queue_size
               + 2 * config.decode_width + 8)
        # entry slots: <= iq_size resident plus <= iq_size buffered entries
        # squashed out of the queue but not yet swept by a revoke.
        ecap = 2 * config.iq_size + 8
        self._cap = cap
        self._ecap = ecap
        slot_bits = cap.bit_length()
        self._slot_bits = slot_bits
        self._smask = (1 << slot_bits) - 1

        self._d_idx = [0] * cap
        self._d_seq = [0] * cap
        self._d_packed = [0] * cap
        self._d_pc = [0] * cap
        self._d_pred_taken: List = [None] * cap
        self._d_pred_target: List = [None] * cap
        self._d_actual_taken: List = [None] * cap
        self._d_actual_target: List = [None] * cap
        self._d_bpred = [-1] * cap
        self._d_issued = [0] * cap
        self._d_done = [0] * cap
        self._d_committed = [0] * cap
        self._d_squashed = [0] * cap
        self._d_from_reuse = [0] * cap
        self._d_predecoded = [0] * cap
        self._d_value: List = [None] * cap
        self._d_store_value: List = [None] * cap
        self._d_waiters: List = [None] * cap
        self._d_rename_snap: List = [None] * cap
        self._d_ras_snap: List = [None] * cap
        self._d_s1ref = [-1] * cap
        self._d_mem_addr = [-1] * cap
        self._d_mem_size = [0] * cap
        self._d_session = [-1] * cap

        self._e_idx = [0] * ecap
        self._e_dslot = [0] * ecap
        self._e_dseq = [0] * ecap
        self._e_pending = [0] * ecap
        self._e_ready = [0] * ecap
        self._e_class = [0] * ecap
        self._e_istate = [0] * ecap
        self._e_inq = [0] * ecap
        self._e_buf = [0] * ecap
        self._e_a = [0] * ecap
        self._e_b = [0] * ecap
        self._e_rtaken: List = [None] * ecap
        self._e_rtarget: List = [None] * ecap

        self._dfree = list(range(cap - 1, -1, -1))
        self._efree = list(range(ecap - 1, -1, -1))
        self._rename_table = [-1] * 64
        self._rob: deque = deque()
        self._lsq: deque = deque()
        self._sq: deque = deque()        # the stores of _lsq, in order
        self._fq: deque = deque()
        self._decoded: deque = deque()
        self._iq_set: set = set()
        self._ready_heap: List = []
        self._inflight: List = []
        self._pending_loads: List = []
        self._pending_stores: List = []
        self._fu_free = [[0] * config.num_ialu, [0] * config.num_imult,
                         [0] * config.num_fpalu, [0] * config.num_fpmult]

        # controller state (the object core's ReuseController, flattened)
        self._state = _ST_NORMAL
        self._gated = False
        self._c_head: Optional[int] = None
        self._c_tail: Optional[int] = None
        self._c_buffered: List[int] = []
        self._c_call_depth = 0
        self._c_iter_counter = 0
        self._c_last_size = 0
        self._c_iters_buffered = 0
        self._c_pending_promote = False
        self._c_promote_slot = -1
        self._c_promote_seq = -1
        self._c_ptr = 0
        self._c_next_eid = 0
        self._c_session = 0
        self._c_undispatched = 0
        self._c_supplied = 0
        self._transitions: List = []
        self._events: List[ControllerEvent] = []
        # trace-reuse controller state (reuse_mode="trace"; see
        # repro.core.trace_controller.TraceReuseController)
        self._tht = TraceHeadTable(config.tht_size)
        self._t_obs_head: Optional[int] = None
        self._t_obs: List = []
        self._t_obs_len = 0
        self._t_ref: tuple = ()
        self._t_ref_idx = 0

        if tracer is not None:
            self.attach_probe(tracer)

    # ---------------------------------------------------------------- probes

    @property
    def tracer(self) -> Optional[PipelineTracer]:
        """The first attached tracer (always on the delegate, if any)."""
        if self._delegate is not None:
            return self._delegate.tracer
        return None

    def attach_probe(self, probe) -> None:
        """Attach an observer by falling back to a delegate object core.

        Probes observe per-instruction lifecycle objects the slot engine
        does not materialise, so the first attach (which must happen
        before the first cycle) builds an object-core delegate over the
        same program/config/memory and rebinds every observable surface
        to it; subsequent cycles run there.
        """
        if self._delegate is None:
            if self._started:
                raise RuntimeError(
                    f"cannot attach a probe to the array core after it "
                    f"has started (cycle {self.cycle}): the array core "
                    f"only swaps in its observable delegate before the "
                    f"first cycle; attach earlier, or build the pipeline "
                    f"with engine='object' which accepts probes at any "
                    f"cycle")
            delegate = Pipeline(self.program, self.config,
                                memory=self.mem_image)
            self._delegate = delegate
            self.stats = delegate.stats
            self.hierarchy = delegate.hierarchy
            self.predictor = delegate.predictor
            self.regfile = delegate.regfile
            self.fetch_unit = delegate.fetch_unit
            self.controller = delegate.controller
            self.nblt = delegate.controller.nblt
            self.lrl = delegate.controller.lrl
        self._delegate.attach_probe(probe)

    def detach_probe(self, probe) -> None:
        """Detach a previously attached observer."""
        if self._delegate is not None:
            self._delegate.detach_probe(probe)
            return
        raise ValueError(f"probe {probe!r} is not attached")

    # ------------------------------------------------------------------ run

    def run(self, max_cycles: Optional[int] = None) -> PipelineStats:
        """Run to the committed ``halt``; returns the statistics."""
        if self._delegate is not None:
            stats = self._delegate.run(max_cycles)
            self.cycle = self._delegate.cycle
            self.halted = self._delegate.halted
            return stats
        self._started = True
        limit = max_cycles if max_cycles is not None \
            else self.config.max_cycles
        self._run(limit, False)
        return self.stats

    def step(self) -> None:
        """Advance the machine by one cycle."""
        if self._delegate is not None:
            self._delegate.step()
            self.cycle = self._delegate.cycle
            self.halted = self._delegate.halted
            return
        self._started = True
        self._run(0, True)

    def architectural_registers(self) -> List:
        """Committed register values (for oracle comparison)."""
        if self._delegate is not None:
            return self._delegate.architectural_registers()
        return self.regfile.as_list()

    # ------------------------------------------------------------- hot loop

    def _run(self, limit: int, single: bool) -> None:
        # localise everything the per-cycle path touches
        config = self.config
        stats = self.stats
        img = self._img
        s_insts = img.insts
        s_ops = img.ops
        s_flags = img.flags
        s_ctrl = img.ctrl
        s_fu = img.fu
        s_lat = img.lat
        s_busy = img.busy
        s_src0 = img.src0
        s_src1 = img.src1
        s_nsrc = img.nsrc
        s_ea = img.ea_imm
        s_target = img.target
        s_dest = img.dest
        s_memsize = img.memsize
        s_pcs = img.pcs
        s_bucket = img.bucket
        s_exec = img.exec_fn
        s_br = img.br_fn
        s_ld = img.ld_fn
        s_st = img.st_fn
        text_base = img.text_base
        n_insts = img.count

        d_idx = self._d_idx
        d_seq = self._d_seq
        d_packed = self._d_packed
        d_pc = self._d_pc
        d_pred_taken = self._d_pred_taken
        d_pred_target = self._d_pred_target
        d_actual_taken = self._d_actual_taken
        d_actual_target = self._d_actual_target
        d_bpred = self._d_bpred
        d_issued = self._d_issued
        d_done = self._d_done
        d_committed = self._d_committed
        d_squashed = self._d_squashed
        d_from_reuse = self._d_from_reuse
        d_predecoded = self._d_predecoded
        d_value = self._d_value
        d_store_value = self._d_store_value
        d_waiters = self._d_waiters
        d_rename_snap = self._d_rename_snap
        d_ras_snap = self._d_ras_snap
        d_s1ref = self._d_s1ref
        d_mem_addr = self._d_mem_addr
        d_mem_size = self._d_mem_size
        d_session = self._d_session

        e_idx = self._e_idx
        e_dslot = self._e_dslot
        e_dseq = self._e_dseq
        e_pending = self._e_pending
        e_ready = self._e_ready
        e_class = self._e_class
        e_istate = self._e_istate
        e_inq = self._e_inq
        e_buf = self._e_buf
        e_a = self._e_a
        e_b = self._e_b
        e_rtaken = self._e_rtaken
        e_rtarget = self._e_rtarget

        dfree = self._dfree
        efree = self._efree
        rename_t = self._rename_table
        rob = self._rob
        lsq = self._lsq
        sq = self._sq
        fq = self._fq
        decoded = self._decoded
        iq_set = self._iq_set
        ready_heap = self._ready_heap
        inflight = self._inflight
        pend_ld = self._pending_loads
        pend_st = self._pending_stores
        fu_free = self._fu_free

        heappush = heapq.heappush
        heappop = heapq.heappop
        regv = self.regfile.values
        mem = self.mem_image
        mem_pages = mem._pages
        # Inlined MRU-hit fast paths for the TLBs and L1s: a hit in way 0
        # needs no LRU reorder, so it reduces to two list reads; anything
        # else takes the full model call.  Hit/access counters for the
        # fast path accumulate in locals and flush in the finally block.
        itlb = self.hierarchy.itlb
        itlb_sets = itlb._sets
        itlb_pb = itlb._page_bits
        itlb_mask = itlb._set_mask
        itlb_sb = itlb.num_sets.bit_length() - 1
        itlb_access = itlb.access
        il1c = self.hierarchy.il1
        il1_sets = il1c._sets
        il1_ob = il1c._offset_bits
        il1_mask = il1c._set_mask
        il1_sb = il1c.num_sets.bit_length() - 1
        il1_access = il1c.access
        dtlb = self.hierarchy.dtlb
        dtlb_sets = dtlb._sets
        dtlb_pb = dtlb._page_bits
        dtlb_mask = dtlb._set_mask
        dtlb_sb = dtlb.num_sets.bit_length() - 1
        dtlb_access = dtlb.access
        dl1c = self.hierarchy.dl1
        dl1_sets = dl1c._sets
        dl1_ob = dl1c._offset_bits
        dl1_mask = dl1c._set_mask
        dl1_sb = dl1c.num_sets.bit_length() - 1
        dl1_access = dl1c.access
        dl1_hitlat = dl1c.hit_latency
        predict = self.predictor.predict
        pupdate = self.predictor.update
        psnapshot = self.predictor.snapshot_state
        lc = self._loop_cache
        lc_decoded = self._lc_decoded

        commit_width = config.commit_width
        issue_width = config.issue_width
        decode_width = config.decode_width
        fetch_width = config.fetch_width
        fetch_queue_size = config.fetch_queue_size
        decode_cap = 2 * decode_width
        rob_size = config.rob_size
        lsq_size = config.lsq_size
        iq_size = config.iq_size
        dcache_ports = config.dcache_ports
        il1_hit = config.il1.hit_latency
        reuse_on = config.reuse_enabled
        trace_on = reuse_on and config.reuse_mode == "trace"
        slot_bits = self._slot_bits
        smask = self._smask
        FSH = _FSHIFT
        PMASK = _PMASK
        E = self._ecap.bit_length()
        emask = (1 << E) - 1

        ST_N = _ST_NORMAL
        ST_B = _ST_BUFFERING
        ST_R = _ST_REUSE

        cycle = self.cycle
        seq = self._seq
        stall_guard = 0
        before = 0

        # Hot-loop statistics accumulate in locals and flush to ``stats``
        # in the finally block below; rare paths (_recover, the
        # controller) update ``stats`` directly -- both are pure adds, so
        # the split is safe.
        n_cycles = 0
        n_cyc_normal = 0
        n_cyc_buffering = 0
        n_cyc_reuse = 0
        n_gated = 0
        n_comm = 0              # committed (== rob_reads)
        n_regw = 0
        n_dstore = 0
        n_br = 0
        n_condbr = 0
        n_resbus = 0
        n_wake = 0
        n_lsqsearch = 0
        n_blocked = 0
        n_fwd = 0
        n_dload = 0
        n_issued = 0
        n_regr = 0
        n_fu0 = 0
        n_fu1 = 0
        n_fu2 = 0
        n_fu3 = 0
        n_iqrem = 0
        n_iqins = 0
        n_reuse = 0             # reuse_supplied == iq_partial_updates
        n_rcomm = 0             # reuse_committed
        n_rtype = [0, 0, 0, 0, 0, 0, 0, 0]   # per REUSE_TYPE_BUCKETS index
        n_decoded = 0           # == lrl_reads
        n_predec = 0
        n_fetched = 0
        n_icache = 0
        n_fstall = 0
        n_btb = 0
        n_disp = 0              # dispatched (== rob_writes)
        n_renl = 0
        n_renw = 0
        n_lsqins = 0
        n_itlb0 = 0             # MRU-hit fast-path counts (hits==accesses)
        n_il10 = 0
        n_dtlb0 = 0
        n_dl10 = 0

        try:
            while True:
                if not single:
                    if self.halted:
                        break
                    if cycle >= limit:
                        raise SimulationTimeout(
                            f"no halt after {cycle} cycles "
                            f"({stats.committed + n_comm} committed)")
                    before = n_comm

                cycle += 1
                self.cycle = cycle
                n_cycles += 1
                dports = 0
                state = self._state
                if state is ST_N:
                    n_cyc_normal += 1
                elif state is ST_B:
                    n_cyc_buffering += 1
                else:
                    n_cyc_reuse += 1
                if self._gated:
                    n_gated += 1

                # ---------------------------------------------------- commit
                budget = commit_width
                while budget:
                    if not rob:
                        break
                    ds = rob[0]
                    if not d_done[ds]:
                        break
                    idx = d_idx[ds]
                    f = s_flags[idx]
                    if f == 0:
                        # plain ALU/FP op: no store port, no LSQ release,
                        # no predictor update, cannot halt
                        rob.popleft()
                        d_committed[ds] = 1
                        n_comm += 1
                        if d_from_reuse[ds]:
                            n_rcomm += 1
                        dreg = s_dest[idx]
                        if dreg >= 0:
                            regv[dreg] = d_value[ds]
                            if rename_t[dreg] == d_packed[ds]:
                                rename_t[dreg] = -1
                            n_regw += 1
                        dfree.append(ds)
                        budget -= 1
                        continue
                    if f & F_STORE:
                        if dports >= dcache_ports:
                            break
                        dports += 1
                        addr = d_mem_addr[ds]
                        pg = addr >> dtlb_pb
                        ways = dtlb_sets[pg & dtlb_mask]
                        if ways and ways[0] == pg >> dtlb_sb:
                            n_dtlb0 += 1
                        else:
                            dtlb_access(addr)
                        line = addr >> dl1_ob
                        ways = dl1_sets[line & dl1_mask]
                        if ways and ways[0][0] == line >> dl1_sb:
                            n_dl10 += 1
                            ways[0][1] = True
                        else:
                            dl1_access(addr, is_write=True)
                        s_st[idx](mem, mem_pages, addr, d_store_value[ds])
                        n_dstore += 1
                    rob.popleft()
                    d_committed[ds] = 1
                    n_comm += 1
                    if d_from_reuse[ds]:
                        n_rcomm += 1
                    if f & F_MEM:
                        lsq.popleft()
                        if f & F_STORE:
                            sq.popleft()
                    dreg = s_dest[idx]
                    if dreg >= 0:
                        regv[dreg] = d_value[ds]
                        if rename_t[dreg] == d_packed[ds]:
                            rename_t[dreg] = -1
                        n_regw += 1
                    if f & F_CONTROL:
                        n_br += 1
                        if f & F_COND:
                            n_condbr += 1
                        pupdate(s_insts[idx], d_pc[ds], d_actual_taken[ds],
                                d_actual_target[ds],
                                direction_index=d_bpred[ds])
                    if f & F_HALT:
                        self.halted = True
                        break
                    dfree.append(ds)
                    budget -= 1
                if self.halted:
                    break

                # ------------------------------------------------- writeback
                climit = (cycle + 1) << FSH
                while inflight and inflight[0] < climit:
                    v = heappop(inflight)
                    wds = v & smask
                    if d_packed[wds] != (v & PMASK) or d_squashed[wds]:
                        continue
                    d_done[wds] = 1
                    n_resbus += 1
                    w = d_waiters[wds]
                    if w:
                        n_wake += 1
                        val = d_value[wds]
                        for es2, guard, pos in w:
                            if e_inq[es2] and e_dseq[es2] == guard:
                                ds2 = e_dslot[es2]
                                if not d_squashed[ds2]:
                                    p = e_pending[es2] - 1
                                    e_pending[es2] = p
                                    if pos:
                                        e_b[es2] = val
                                    else:
                                        e_a[es2] = val
                                    if (p == 0 and not d_issued[ds2]
                                            and not e_ready[es2]):
                                        e_ready[es2] = 1
                                        heappush(ready_heap,
                                                 (guard << E) | es2)
                        d_waiters[wds] = None
                    idx = d_idx[wds]
                    if s_flags[idx] & F_CONTROL:
                        at = d_actual_taken[wds]
                        if (at != d_pred_taken[wds]
                                or (at and d_actual_target[wds]
                                    != d_pred_target[wds])):
                            self._recover(wds)

                # ------------------------------------------------------- LSQ
                if pend_st:
                    still = []
                    for rec in pend_st:
                        ds = rec & smask
                        if d_packed[ds] != rec or d_squashed[ds]:
                            continue
                        ref = d_s1ref[ds]
                        ps = ref & smask
                        if d_packed[ps] != ref or d_committed[ps]:
                            d_store_value[ds] = regv[s_src1[d_idx[ds]]]
                            heappush(inflight, ((cycle + 1) << FSH) | rec)
                        elif d_done[ps]:
                            d_store_value[ds] = d_value[ps]
                            heappush(inflight, ((cycle + 1) << FSH) | rec)
                        else:
                            still.append(rec)
                    pend_st[:] = still
                if pend_ld:
                    still = []
                    for rec in pend_ld:
                        ds = rec & smask
                        if d_packed[ds] != rec or d_squashed[ds]:
                            continue
                        lseq = d_seq[ds]
                        load_start = d_mem_addr[ds]
                        load_end = load_start + d_mem_size[ds]
                        fwd = -1
                        blocked = False
                        for ms in sq:
                            if d_seq[ms] >= lseq:
                                break
                            saddr = d_mem_addr[ms]
                            if saddr < 0:
                                blocked = True
                                break
                            if (saddr < load_end
                                    and load_start < saddr + d_mem_size[ms]):
                                fwd = ms
                        n_lsqsearch += 1
                        if not blocked and fwd >= 0:
                            if not (d_mem_addr[fwd] == load_start
                                    and d_mem_size[fwd] == d_mem_size[ds]
                                    and d_done[fwd]):
                                blocked = True
                            else:
                                d_value[ds] = forwarded_value(
                                    s_ops[d_idx[ds]], d_store_value[fwd])
                                n_fwd += 1
                                heappush(inflight,
                                         ((cycle + 1) << FSH) | rec)
                                continue
                        if blocked:
                            n_blocked += 1
                            still.append(rec)
                            continue
                        if dports >= dcache_ports:
                            still.append(rec)
                            continue
                        dports += 1
                        addr = d_mem_addr[ds]
                        pg = addr >> dtlb_pb
                        ways = dtlb_sets[pg & dtlb_mask]
                        if ways and ways[0] == pg >> dtlb_sb:
                            n_dtlb0 += 1
                            latency = dl1_hitlat
                        else:
                            latency = dtlb_access(addr) + dl1_hitlat
                        line = addr >> dl1_ob
                        ways = dl1_sets[line & dl1_mask]
                        if ways and ways[0][0] == line >> dl1_sb:
                            n_dl10 += 1
                        else:
                            latency += (dl1_access(addr, is_write=False)
                                        - dl1_hitlat)
                        n_dload += 1
                        d_value[ds] = s_ld[d_idx[ds]](mem, mem_pages, addr)
                        heappush(inflight,
                                 ((cycle + latency) << FSH) | rec)
                    pend_ld[:] = still

                # ----------------------------------------------------- issue
                budget = issue_width
                retry = None
                while budget:
                    es = -1
                    while ready_heap:
                        v = heappop(ready_heap)
                        e = v & emask
                        if e_ready[e] and e_dseq[e] == v >> E:
                            e_ready[e] = 0
                            es = e
                            break
                    if es < 0:
                        break
                    ds = e_dslot[es]
                    idx = e_idx[es]
                    fuc = s_fu[idx]
                    if fuc != 4:
                        units = fu_free[fuc]
                        if units[0] <= cycle:
                            units[0] = cycle + s_busy[idx]
                        else:
                            for ui in range(1, len(units)):
                                if units[ui] <= cycle:
                                    units[ui] = cycle + s_busy[idx]
                                    break
                            else:
                                if retry is None:
                                    retry = [es]
                                else:
                                    retry.append(es)
                                continue
                    # -- execute
                    d_issued[ds] = 1
                    n_issued += 1
                    packed = d_packed[ds]
                    a = e_a[es]
                    b = e_b[es]
                    n_regr += s_nsrc[idx]
                    if fuc == 0:
                        n_fu0 += 1
                    elif fuc == 1:
                        n_fu1 += 1
                    elif fuc == 2:
                        n_fu2 += 1
                    elif fuc == 3:
                        n_fu3 += 1
                    f = s_flags[idx]
                    if f == 0:
                        d_value[ds] = s_exec[idx](a, b)
                        heappush(inflight,
                                 ((cycle + s_lat[idx]) << FSH) | packed)
                    elif f & F_LOAD:
                        d_mem_addr[ds] = (a + s_ea[idx]) & 0xFFFFFFFF
                        pend_ld.append(packed)
                    elif f & F_STORE:
                        d_mem_addr[ds] = (a + s_ea[idx]) & 0xFFFFFFFF
                        ref = d_s1ref[ds]
                        if ref < 0:
                            d_store_value[ds] = regv[s_src1[idx]]
                            heappush(inflight, ((cycle + 1) << FSH) | packed)
                        else:
                            ps = ref & smask
                            if d_packed[ps] != ref or d_committed[ps]:
                                d_store_value[ds] = regv[s_src1[idx]]
                                heappush(inflight,
                                         ((cycle + 1) << FSH) | packed)
                            elif d_done[ps]:
                                d_store_value[ds] = d_value[ps]
                                heappush(inflight,
                                         ((cycle + 1) << FSH) | packed)
                            else:
                                pend_st.append(packed)
                    elif f & F_CONTROL:
                        c = s_ctrl[idx]
                        if c == 0:
                            taken = s_br[idx](a, b)
                            d_actual_taken[ds] = taken
                            d_actual_target[ds] = (s_target[idx] if taken
                                                   else d_pc[ds] + 4)
                        elif c == 1:
                            d_actual_taken[ds] = True
                            d_actual_target[ds] = s_target[idx]
                        elif c == 2:
                            d_actual_taken[ds] = True
                            d_actual_target[ds] = s_target[idx]
                            d_value[ds] = d_pc[ds] + 4
                        elif c == 3:
                            d_actual_taken[ds] = True
                            d_actual_target[ds] = a
                        else:
                            d_actual_taken[ds] = True
                            d_actual_target[ds] = a
                            d_value[ds] = d_pc[ds] + 4
                        heappush(inflight,
                                 ((cycle + s_lat[idx]) << FSH) | packed)
                    else:           # NOP / HALT
                        heappush(inflight, ((cycle + 1) << FSH) | packed)
                    if e_class[es]:
                        e_istate[es] = 1
                    else:
                        e_inq[es] = 0
                        iq_set.discard(es)
                        n_iqrem += 1
                        if not e_buf[es]:
                            efree.append(es)
                    budget -= 1
                if retry:
                    for es in retry:
                        if not e_ready[es]:
                            e_ready[es] = 1
                            heappush(ready_heap, (e_dseq[es] << E) | es)

                # -------------------------------------------------- dispatch
                if reuse_on and self._state is ST_R and not decoded:
                    buffered = self._c_buffered
                    ptr = self._c_ptr
                    budget = decode_width
                    rob_n = len(rob)
                    lsq_n = len(lsq)
                    while budget:
                        if not buffered:
                            break
                        es = buffered[ptr]
                        if not e_istate[es]:
                            break
                        idx = e_idx[es]
                        f = s_flags[idx]
                        if rob_n >= rob_size:
                            break
                        if f & F_MEM and lsq_n >= lsq_size:
                            break
                        seq += 1
                        ds = dfree.pop()
                        d_idx[ds] = idx
                        d_seq[ds] = seq
                        d_packed[ds] = (seq << slot_bits) | ds
                        d_pc[ds] = s_pcs[idx]
                        d_issued[ds] = 0
                        d_done[ds] = 0
                        d_committed[ds] = 0
                        d_squashed[ds] = 0
                        d_from_reuse[ds] = 1
                        d_waiters[ds] = None
                        d_session[ds] = -1
                        if f & F_CONTROL:
                            d_pred_taken[ds] = e_rtaken[es]
                            d_pred_target[ds] = e_rtarget[es]
                            d_bpred[ds] = -1
                            d_ras_snap[ds] = None
                        elif f & F_STORE:
                            d_mem_addr[ds] = -1
                        e_dslot[es] = ds
                        e_dseq[es] = seq
                        e_istate[es] = 0
                        e_ready[es] = 0
                        # -- rename + allocate (inline)
                        n_disp += 1
                        pending = 0
                        nsrc = s_nsrc[idx]
                        if nsrc:
                            n_renl += 1
                            src = s_src0[idx]
                            ref = rename_t[src]
                            if ref < 0:
                                e_a[es] = regv[src]
                            else:
                                ps = ref & smask
                                if d_packed[ps] != ref or d_committed[ps]:
                                    e_a[es] = regv[src]
                                elif d_done[ps]:
                                    e_a[es] = d_value[ps]
                                else:
                                    pending = 1
                                    w = d_waiters[ps]
                                    if w is None:
                                        d_waiters[ps] = [(es, seq, 0)]
                                    else:
                                        w.append((es, seq, 0))
                            if nsrc > 1:
                                n_renl += 1
                                src = s_src1[idx]
                                ref = rename_t[src]
                                if f & F_STORE:
                                    d_s1ref[ds] = ref
                                elif ref < 0:
                                    e_b[es] = regv[src]
                                else:
                                    ps = ref & smask
                                    if (d_packed[ps] != ref
                                            or d_committed[ps]):
                                        e_b[es] = regv[src]
                                    elif d_done[ps]:
                                        e_b[es] = d_value[ps]
                                    else:
                                        pending += 1
                                        w = d_waiters[ps]
                                        if w is None:
                                            d_waiters[ps] = [(es, seq, 1)]
                                        else:
                                            w.append((es, seq, 1))
                        dreg = s_dest[idx]
                        if dreg >= 0:
                            rename_t[dreg] = d_packed[ds]
                            n_renw += 1
                        if f & F_CONTROL:
                            d_rename_snap[ds] = rename_t[:]
                            d_ras_snap[ds] = psnapshot()
                        if f & F_MEM:
                            d_mem_size[ds] = s_memsize[idx]
                            lsq.append(ds)
                            lsq_n += 1
                            n_lsqins += 1
                            if f & F_STORE:
                                sq.append(ds)
                        rob.append(ds)
                        rob_n += 1
                        e_pending[es] = pending
                        if pending == 0:
                            e_ready[es] = 1
                            heappush(ready_heap, (seq << E) | es)
                        ptr += 1
                        if ptr >= len(buffered):
                            if (_controller_mod._INJECTED_BUG
                                    == "skip-lrl-update"
                                    and len(buffered) > 1):
                                ptr = 1
                            else:
                                ptr = 0
                        n_reuse += 1
                        n_rtype[s_bucket[idx]] += 1
                        self._c_supplied += 1
                        budget -= 1
                    self._c_ptr = ptr
                elif decoded:
                    budget = decode_width
                    rob_n = len(rob)
                    lsq_n = len(lsq)
                    iq_n = len(iq_set)
                    while budget and decoded:
                        ds = decoded[0]
                        idx = d_idx[ds]
                        f = s_flags[idx]
                        if rob_n >= rob_size:
                            break
                        if f & F_MEM and lsq_n >= lsq_size:
                            break
                        if iq_n >= iq_size:
                            if reuse_on:
                                self._on_iq_full(ds)
                            break
                        decoded.popleft()
                        es = efree.pop()
                        myseq = d_seq[ds]
                        e_idx[es] = idx
                        e_dslot[es] = ds
                        e_dseq[es] = myseq
                        e_ready[es] = 0
                        e_class[es] = 0
                        e_istate[es] = 0
                        e_buf[es] = 0
                        # -- rename + allocate (inline)
                        n_disp += 1
                        pending = 0
                        nsrc = s_nsrc[idx]
                        if nsrc:
                            n_renl += 1
                            src = s_src0[idx]
                            ref = rename_t[src]
                            if ref < 0:
                                e_a[es] = regv[src]
                            else:
                                ps = ref & smask
                                if d_packed[ps] != ref or d_committed[ps]:
                                    e_a[es] = regv[src]
                                elif d_done[ps]:
                                    e_a[es] = d_value[ps]
                                else:
                                    pending = 1
                                    w = d_waiters[ps]
                                    if w is None:
                                        d_waiters[ps] = [(es, myseq, 0)]
                                    else:
                                        w.append((es, myseq, 0))
                            if nsrc > 1:
                                n_renl += 1
                                src = s_src1[idx]
                                ref = rename_t[src]
                                if f & F_STORE:
                                    d_s1ref[ds] = ref
                                elif ref < 0:
                                    e_b[es] = regv[src]
                                else:
                                    ps = ref & smask
                                    if (d_packed[ps] != ref
                                            or d_committed[ps]):
                                        e_b[es] = regv[src]
                                    elif d_done[ps]:
                                        e_b[es] = d_value[ps]
                                    else:
                                        pending += 1
                                        w = d_waiters[ps]
                                        if w is None:
                                            d_waiters[ps] = \
                                                [(es, myseq, 1)]
                                        else:
                                            w.append((es, myseq, 1))
                        dreg = s_dest[idx]
                        if dreg >= 0:
                            rename_t[dreg] = d_packed[ds]
                            n_renw += 1
                        if f & F_CONTROL:
                            d_rename_snap[ds] = rename_t[:]
                        if f & F_MEM:
                            d_mem_size[ds] = s_memsize[idx]
                            lsq.append(ds)
                            lsq_n += 1
                            n_lsqins += 1
                            if f & F_STORE:
                                sq.append(ds)
                        rob.append(ds)
                        rob_n += 1
                        e_pending[es] = pending
                        e_inq[es] = 1
                        iq_set.add(es)
                        iq_n += 1
                        if pending == 0:
                            e_ready[es] = 1
                            heappush(ready_heap, (myseq << E) | es)
                        n_iqins += 1
                        if reuse_on:
                            if self._state is ST_B:
                                self._on_dispatch(ds, es)
                            if self._state is ST_R:
                                # tail dispatched, Code Reuse engaged: the
                                # queued front-end is the next iteration,
                                # which the reuse pointer supplies instead
                                while fq:
                                    dfree.append(fq.popleft())
                                while decoded:
                                    dfree.append(decoded.popleft())
                                break
                        budget -= 1

                # ---------------------------------------------------- decode
                if not self._gated and fq:
                    budget = decode_width
                    dec_n = len(decoded)
                    while budget and fq and dec_n < decode_cap:
                        ds = fq.popleft()
                        n_decoded += 1
                        if d_predecoded[ds]:
                            n_predec += 1
                        decoded.append(ds)
                        dec_n += 1
                        if reuse_on:
                            st = self._state
                            if st is ST_N:
                                if trace_on:
                                    self._trace_observe(ds)
                                elif (s_flags[d_idx[ds]] & F_BACKWARD
                                        and d_pred_taken[ds]):
                                    self._try_start_buffering(ds)
                            elif st is ST_B:
                                if trace_on:
                                    self._trace_buffering_decode(ds)
                                else:
                                    self._buffering_decode(ds)
                            if self._gated:
                                break
                        budget -= 1

                # ----------------------------------------------------- fetch
                if not self._gated:
                    if self._stall_until > cycle:
                        n_fstall += 1
                    else:
                        fq_n = len(fq)
                        if fq_n < fetch_queue_size:
                            pc = self._pc
                            off = pc - text_base
                            if off < 0 or off & 3 or off >> 2 >= n_insts:
                                n_fstall += 1
                            else:
                                supplying = (lc is not None
                                             and lc.can_supply(pc))
                                stalled = False
                                if not supplying:
                                    pg = pc >> itlb_pb
                                    ways = itlb_sets[pg & itlb_mask]
                                    if ways and ways[0] == pg >> itlb_sb:
                                        n_itlb0 += 1
                                        latency = il1_hit
                                    else:
                                        latency = (itlb_access(pc)
                                                   + il1_hit)
                                    line = pc >> il1_ob
                                    ways = il1_sets[line & il1_mask]
                                    if (ways
                                            and ways[0][0]
                                            == line >> il1_sb):
                                        n_il10 += 1
                                    else:
                                        latency += (il1_access(
                                            pc, is_write=False) - il1_hit)
                                    n_icache += 1
                                    if latency > il1_hit:
                                        self._stall_until = cycle + latency
                                        stalled = True
                                if not stalled:
                                    pd = (1 if supplying and lc_decoded
                                          else 0)
                                    fetched = 0
                                    while (fetched < fetch_width
                                           and fq_n < fetch_queue_size):
                                        if (supplying
                                                and not lc.can_supply(pc)):
                                            break
                                        if (off < 0 or off & 3
                                                or off >> 2 >= n_insts):
                                            break
                                        idx = off >> 2
                                        if lc is not None and not supplying:
                                            lc.capture(pc)
                                        seq += 1
                                        ds = dfree.pop()
                                        d_idx[ds] = idx
                                        d_seq[ds] = seq
                                        d_packed[ds] = \
                                            (seq << slot_bits) | ds
                                        d_pc[ds] = pc
                                        d_issued[ds] = 0
                                        d_done[ds] = 0
                                        d_committed[ds] = 0
                                        d_squashed[ds] = 0
                                        d_from_reuse[ds] = 0
                                        d_predecoded[ds] = pd
                                        d_waiters[ds] = None
                                        d_session[ds] = -1
                                        n_fetched += 1
                                        fetched += 1
                                        f = s_flags[idx]
                                        if f & F_CONTROL:
                                            pred = predict(s_insts[idx], pc)
                                            d_pred_taken[ds] = pred.taken
                                            d_pred_target[ds] = pred.target
                                            d_bpred[ds] = \
                                                pred.direction_index
                                            d_ras_snap[ds] = psnapshot()
                                            fq.append(ds)
                                            fq_n += 1
                                            if pred.taken:
                                                if (lc is not None
                                                        and f
                                                        & F_LC_TRIGGER):
                                                    lc.on_backward_branch(
                                                        pc, s_target[idx])
                                                pc = pred.target
                                            else:
                                                pc += 4
                                            off = pc - text_base
                                            if pred.btb_bubble:
                                                n_btb += 1
                                                self._stall_until = \
                                                    cycle + 2
                                                break
                                        else:
                                            if f & F_STORE:
                                                d_mem_addr[ds] = -1
                                            fq.append(ds)
                                            fq_n += 1
                                            pc += 4
                                            off += 4
                                    self._pc = pc
                                    if supplying and fetched:
                                        lc.note_supply(fetched)

                if single:
                    break
                if n_comm == before:
                    stall_guard += 1
                    if stall_guard > 200_000:
                        head = self._rob[0] if self._rob else None
                        head_repr = (self._slot_repr(head)
                                     if head is not None else "None")
                        raise SimulationTimeout(
                            f"pipeline stalled for {stall_guard} cycles at "
                            f"cycle {self.cycle} (rob head: {head_repr},"
                            f" state: {self._state})")
                else:
                    stall_guard = 0
        finally:
            self._seq = seq
            stats.cycles += n_cycles
            stats.cycles_normal += n_cyc_normal
            stats.cycles_buffering += n_cyc_buffering
            stats.cycles_reuse += n_cyc_reuse
            stats.gated_cycles += n_gated
            stats.committed += n_comm
            stats.rob_reads += n_comm
            stats.regfile_writes += n_regw
            stats.dcache_store_accesses += n_dstore
            stats.branches_committed += n_br
            stats.cond_branches_committed += n_condbr
            stats.resultbus_writes += n_resbus
            stats.iq_wakeups += n_wake
            stats.lsq_searches += n_lsqsearch
            stats.load_blocked_cycles += n_blocked
            stats.lsq_forwards += n_fwd
            stats.dcache_load_accesses += n_dload
            stats.issued += n_issued
            stats.regfile_reads += n_regr
            stats.fu_int_ops += n_fu0
            stats.fu_mult_ops += n_fu1
            stats.fu_fp_ops += n_fu2
            stats.fu_fpmult_ops += n_fu3
            stats.iq_removes += n_iqrem
            stats.iq_inserts += n_iqins
            stats.reuse_supplied += n_reuse
            stats.iq_partial_updates += n_reuse
            stats.lrl_reads += n_reuse
            stats.reuse_committed += n_rcomm
            stats.reuse_supplied_ialu += n_rtype[0]
            stats.reuse_supplied_imul += n_rtype[1]
            stats.reuse_supplied_fpalu += n_rtype[2]
            stats.reuse_supplied_fpmul += n_rtype[3]
            stats.reuse_supplied_load += n_rtype[4]
            stats.reuse_supplied_store += n_rtype[5]
            stats.reuse_supplied_control += n_rtype[6]
            stats.reuse_supplied_other += n_rtype[7]
            stats.decoded += n_decoded
            stats.predecoded_supplied += n_predec
            stats.fetched += n_fetched
            stats.icache_fetch_cycles += n_icache
            stats.fetch_stall_cycles += n_fstall
            stats.btb_bubbles += n_btb
            stats.dispatched += n_disp
            stats.rob_writes += n_disp
            stats.rename_lookups += n_renl
            stats.rename_writes += n_renw
            stats.lsq_inserts += n_lsqins
            itlb.accesses += n_itlb0
            itlb.hits += n_itlb0
            il1c.accesses += n_il10
            il1c.hits += n_il10
            dtlb.accesses += n_dtlb0
            dtlb.hits += n_dtlb0
            dl1c.accesses += n_dl10
            dl1c.hits += n_dl10

    def _slot_repr(self, ds: int) -> str:
        """The object core's ``DynInst.__repr__`` rebuilt from columns."""
        flags = "D"                      # ROB residents are dispatched
        if self._d_issued[ds]:
            flags += "I"
        if self._d_done[ds]:
            flags += "X"
        if self._d_committed[ds]:
            flags += "C"
        if self._d_squashed[ds]:
            flags += "S"
        if self._d_from_reuse[ds]:
            flags += "R"
        inst = self._img.insts[self._d_idx[ds]]
        return f"<DynInst #{self._d_seq[ds]} {inst.disassemble()} [{flags}]>"

    # ----------------------------------------------------------- rare paths

    def _recover(self, ds: int) -> None:
        """Branch misprediction recovery (also the reuse exit path)."""
        stats = self.stats
        d_seq = self._d_seq
        d_squashed = self._d_squashed
        dfree = self._dfree
        stats.mispredicts += 1
        at = self._d_actual_taken[ds]
        target = self._d_actual_target[ds] if at else self._d_pc[ds] + 4
        bseq = d_seq[ds]
        rob = self._rob
        count = 0
        while rob and d_seq[rob[-1]] > bseq:
            vs = rob.pop()
            d_squashed[vs] = 1
            dfree.append(vs)
            count += 1
        stats.squashed += count
        e_dseq = self._e_dseq
        e_buf = self._e_buf
        iq_set = self._iq_set
        victims = [es for es in iq_set if e_dseq[es] > bseq]
        for es in victims:
            self._e_inq[es] = 0
            self._e_ready[es] = 0
            iq_set.discard(es)
            if not e_buf[es]:
                self._efree.append(es)
        stats.iq_removes += len(victims)
        lsq = self._lsq
        while lsq and d_seq[lsq[-1]] > bseq:
            lsq.pop()
        sq = self._sq
        while sq and d_seq[sq[-1]] > bseq:
            sq.pop()
        self._rename_table[:] = self._d_rename_snap[ds]
        self.predictor.restore_state(
            self._d_ras_snap[ds],
            actual_taken=(at if self._img.flags[self._d_idx[ds]] & F_COND
                          else None))
        decoded = self._decoded
        while decoded:
            dfree.append(decoded.popleft())
        fq = self._fq
        while fq:
            dfree.append(fq.popleft())
        self._pc = target
        self._stall_until = self.cycle + 1
        if self.config.reuse_enabled:
            state = self._state
            if state is _ST_BUFFERING:
                self._revoke("mispredict during buffering",
                             register_nblt=False)
                stats.revokes_mispredict += 1
            elif state is _ST_REUSE:
                stats.reuse_mispredicts += 1
                self._revoke("reuse exit", register_nblt=False)
            elif self.config.reuse_mode == "trace":
                # the squash invalidated part of the observed decode
                # stream; the window no longer describes a real path
                self._t_obs_head = None
                self._t_obs = []
                self._t_obs_len = 0

    # -- controller (the object core's ReuseController, on slot handles) --

    def _transition(self, new_state: IQState, reason: str) -> None:
        check_transition(self._state, new_state)
        self._transitions.append((self._state, new_state, reason))
        self._state = new_state

    def _try_start_buffering(self, ds: int) -> None:
        """Loop detection at decode (callers checked ``is_loop_ending``)."""
        stats = self.stats
        idx = self._d_idx[ds]
        if self._img.loop_size[idx] > self.config.iq_size:
            return
        stats.loop_detections += 1
        tail = self._d_pc[ds]
        if self.nblt.lookup(tail):
            stats.nblt_lookups += 1
            stats.nblt_hits += 1
            return
        stats.nblt_lookups += 1
        head = self._img.target[idx]
        self._transition(_ST_BUFFERING, "capturable loop detected")
        self._events.append(ControllerEvent(
            kind="buffer_start", head_pc=head, tail_pc=tail,
            cycle=self.cycle))
        stats.buffering_started += 1
        self._c_session += 1
        self._c_undispatched = 0
        self._c_head = head
        self._c_tail = tail
        self._c_buffered = []
        self._c_call_depth = 0
        self._c_iter_counter = 0
        self._c_last_size = 0
        self._c_iters_buffered = 0
        self._c_pending_promote = False
        self._c_promote_slot = -1
        self._c_promote_seq = -1
        self._c_supplied = 0

    def _buffering_decode(self, ds: int) -> None:
        if self._c_pending_promote:
            # the gate is already up; an instruction still in flight
            # through decode this cycle is simply left alone
            return
        stats = self.stats
        pc = self._d_pc[ds]
        tail = self._c_tail
        if pc == tail and self._c_call_depth == 0:
            self._iteration_boundary(ds)
            return
        if self._c_call_depth == 0 and not (self._c_head <= pc <= tail):
            self._revoke("exit", register_nblt=True)
            stats.revokes_exit += 1
            return
        f = self._img.flags[self._d_idx[ds]]
        if f & F_BACKWARD and self._d_pred_taken[ds]:
            # an inner loop inside the loop being buffered: the current
            # loop is non-bufferable; re-run detection on the inner loop
            self._revoke("inner loop", register_nblt=True)
            stats.revokes_inner_loop += 1
            self._try_start_buffering(ds)
            return
        self._d_session[ds] = self._c_session
        self._c_undispatched += 1
        self._c_iter_counter += 1
        if f & F_CALL:
            self._c_call_depth += 1
        elif f & F_RETURN and self._c_call_depth > 0:
            self._c_call_depth -= 1

    def _iteration_boundary(self, ds: int) -> None:
        stats = self.stats
        self._d_session[ds] = self._c_session
        self._c_undispatched += 1
        self._c_iter_counter += 1
        if not self._d_pred_taken[ds]:
            # the loop ends here: execution exits during buffering
            self._revoke("exit at tail", register_nblt=True)
            stats.revokes_exit += 1
            return
        self._c_last_size = self._c_iter_counter
        self._c_iter_counter = 0
        self._c_iters_buffered += 1
        if self.config.buffering_strategy == "single":
            self._promote(ds)
            return
        effective_free = ((self.config.iq_size - len(self._iq_set))
                          - self._c_undispatched)
        if effective_free >= self._c_last_size:
            return
        self._promote(ds)

    # -- trace controller (TraceReuseController, on slot handles) ----------

    def _trace_observe(self, ds: int) -> None:
        """Normal-state observation hook (reuse_mode="trace" only)."""
        if self._tht.size <= 0:
            return
        idx = self._d_idx[ds]
        f = self._img.flags[idx]
        if f & F_BACKWARD and self._d_pred_taken[ds]:
            self._trace_observe_tail(ds, idx)
            return
        if self._t_obs_head is None:
            return
        self._t_obs_len += 1
        if self._t_obs_len >= self.config.iq_size:
            # the path from the anchor no longer fits head..tail inclusive
            # in the issue queue; abandon and wait for the next anchor
            self._t_obs_head = None
            self._t_obs = []
            self._t_obs_len = 0
            return
        if f & F_CONTROL:
            self._t_obs.append(
                (self._d_pc[ds], self._d_pred_taken[ds],
                 self._d_pred_target[ds]))

    def _trace_observe_tail(self, ds: int, idx: int) -> None:
        stats = self.stats
        head = self._img.target[idx]
        tail = self._d_pc[ds]
        if self._t_obs_head == head:
            signature = tuple(self._t_obs) + (
                (tail, self._d_pred_taken[ds], self._d_pred_target[ds]),)
            stats.trace_detections += 1
            stats.tht_lookups += 1
            stored = self._tht.get(head)
            if stored == signature:
                stats.tht_hits += 1
                stats.loop_detections += 1
                if self.nblt.lookup(tail):
                    stats.nblt_lookups += 1
                    stats.nblt_hits += 1
                else:
                    stats.nblt_lookups += 1
                    self._trace_start_buffering(head, tail, signature)
                    return
            else:
                self._tht.put(head, signature)
        # re-anchor at this tail's target; the traversal that just ended
        # (or a partial window) doubles as the start of the next one
        self._t_obs_head = head
        self._t_obs = []
        self._t_obs_len = 0

    def _trace_start_buffering(self, head: int, tail: int,
                               signature: tuple) -> None:
        stats = self.stats
        self._transition(_ST_BUFFERING, "capturable loop detected")
        self._events.append(ControllerEvent(
            kind="buffer_start", head_pc=head, tail_pc=tail,
            cycle=self.cycle))
        stats.buffering_started += 1
        self._c_session += 1
        self._c_undispatched = 0
        self._c_head = head
        self._c_tail = tail
        self._c_buffered = []
        self._c_call_depth = 0
        self._c_iter_counter = 0
        self._c_last_size = 0
        self._c_iters_buffered = 0
        self._c_pending_promote = False
        self._c_promote_slot = -1
        self._c_promote_seq = -1
        self._c_supplied = 0
        self._t_ref = signature
        self._t_ref_idx = 0
        self._t_obs_head = None
        self._t_obs = []
        self._t_obs_len = 0

    def _trace_buffering_decode(self, ds: int) -> None:
        if self._c_pending_promote:
            # the gate is already up; an instruction still in flight
            # through decode this cycle is simply left alone
            return
        stats = self.stats
        if self._img.flags[self._d_idx[ds]] & F_CONTROL:
            ref = self._t_ref[self._t_ref_idx]
            pc = self._d_pc[ds]
            taken = self._d_pred_taken[ds]
            if (pc, taken, self._d_pred_target[ds]) != ref:
                last = self._t_ref_idx == len(self._t_ref) - 1
                if last and pc == ref[0] and not taken:
                    # the trace ends here: execution exits during
                    # buffering (the paper's exit-at-tail rule)
                    self._d_session[ds] = self._c_session
                    self._c_undispatched += 1
                    self._c_iter_counter += 1
                    self._revoke("exit at tail", register_nblt=True)
                    stats.revokes_exit += 1
                    return
                self._revoke("trace divergence", register_nblt=True)
                stats.revokes_divergence += 1
                return
            if self._t_ref_idx == len(self._t_ref) - 1:
                self._trace_iteration_boundary(ds)
                return
            self._t_ref_idx += 1
        # non-control instructions need no check: the path between two
        # controls is fully determined by the previous control's outcome
        self._d_session[ds] = self._c_session
        self._c_undispatched += 1
        self._c_iter_counter += 1

    def _trace_iteration_boundary(self, ds: int) -> None:
        self._d_session[ds] = self._c_session
        self._c_undispatched += 1
        self._c_iter_counter += 1
        self._c_last_size = self._c_iter_counter
        self._c_iter_counter = 0
        self._c_iters_buffered += 1
        self._t_ref_idx = 0
        if self.config.buffering_strategy == "single":
            self._promote(ds)
            return
        effective_free = ((self.config.iq_size - len(self._iq_set))
                          - self._c_undispatched)
        if effective_free >= self._c_last_size:
            return
        self._promote(ds)

    def _promote(self, ds: int) -> None:
        """Raise the gate; Code Reuse begins once the tail is dispatched."""
        self._c_pending_promote = True
        self._c_promote_slot = ds
        self._c_promote_seq = self._d_seq[ds]
        self._gated = True

    def _on_dispatch(self, ds: int, es: int) -> None:
        """Buffering-state dispatch hook (callers checked the state)."""
        stats = self.stats
        if self._d_session[ds] == self._c_session:
            self._c_undispatched -= 1
            self._e_class[es] = 1
            self._e_istate[es] = 0
            eid = self._c_next_eid
            self._c_next_eid += 1
            idx = self._d_idx[ds]
            inst = self._img.insts[idx]
            self.lrl.record(eid, inst.dest, inst.srcs)
            stats.lrl_writes += 1
            if self._img.flags[idx] & F_CONTROL:
                self._e_rtaken[es] = self._d_pred_taken[ds]
                self._e_rtarget[es] = self._d_pred_target[ds]
            self._c_buffered.append(es)
            self._e_buf[es] = 1
            stats.buffered_instructions += 1
        if (self._c_pending_promote and ds == self._c_promote_slot
                and self._d_seq[ds] == self._c_promote_seq):
            self._enter_reuse()

    def _enter_reuse(self) -> None:
        self._transition(_ST_REUSE, "buffering finished")
        self._events.append(ControllerEvent(
            kind="promote", head_pc=self._c_head, tail_pc=self._c_tail,
            iterations=self._c_iters_buffered, cycle=self.cycle))
        self.stats.promotions += 1
        self.stats.buffered_iterations += self._c_iters_buffered
        self._c_pending_promote = False
        self._c_promote_slot = -1
        self._c_promote_seq = -1
        self._c_ptr = 0

    def _on_iq_full(self, ds: int) -> None:
        """Dispatch stalled on a full issue queue (see the object core)."""
        if not self.config.reuse_enabled \
                or self._state is not _ST_BUFFERING:
            return
        if self._d_session[ds] != self._c_session:
            return
        e_inq = self._e_inq
        resident = 0
        for es in self._c_buffered:
            if e_inq[es]:
                resident += 1
        if resident >= len(self._iq_set):
            self._revoke("issue queue full", register_nblt=True)
            self.stats.revokes_iq_full += 1

    def _revoke(self, reason: str, register_nblt: bool) -> None:
        """Return to Normal state (the paper's Section 2.5 rules)."""
        stats = self.stats
        tail = self._c_tail
        inserted = register_nblt and tail is not None
        self._events.append(ControllerEvent(
            kind="revoke", head_pc=self._c_head, tail_pc=tail,
            reason=reason, nblt_insert=inserted,
            iterations=self._c_iters_buffered, cycle=self.cycle,
            supplied=self._c_supplied))
        if inserted:
            self.nblt.insert(tail)
            stats.nblt_inserts += 1
        e_inq = self._e_inq
        e_buf = self._e_buf
        efree = self._efree
        for es in self._c_buffered:
            e_buf[es] = 0
            if not e_inq[es]:
                efree.append(es)       # squashed out earlier; sweep now
                continue
            if self._e_istate[es]:
                e_inq[es] = 0
                self._e_ready[es] = 0
                self._iq_set.discard(es)
                stats.iq_removes += 1
                efree.append(es)
            else:
                # not yet issued: it must still execute; remove at issue
                # like any conventional entry
                self._e_class[es] = 0
        if self._state is _ST_BUFFERING:
            stats.buffering_revokes += 1
        self._c_buffered = []
        self.lrl.clear()
        stats.revokes += 1
        self._c_pending_promote = False
        self._c_promote_slot = -1
        self._c_promote_seq = -1
        self._gated = False
        self._c_head = None
        self._c_tail = None
        self._t_ref = ()
        self._t_ref_idx = 0
        self._t_obs_head = None
        self._t_obs = []
        self._t_obs_len = 0
        self._transition(_ST_NORMAL, reason)
