"""Static predecode columns for the array core.

The object core re-derives instruction classification through ``Opcode``
enum properties on every touch; profiling shows those
``DynamicClassAttribute`` lookups dominate its cycle loop.  The array
core instead predecodes each :class:`~repro.isa.program.Program` once
into a :class:`CoreImage`: parallel columns indexed by text-segment
index holding flag bitmasks, operand register numbers, latencies,
functional-unit codes and per-instruction evaluation closures.  The hot
loop then runs on integer loads and direct calls only.

Images are immutable and cached per program object (weakly, so a
discarded program frees its image): every :class:`FastPipeline` over the
same program -- an IQ sweep, a fuzz campaign -- shares one predecode.
"""

from __future__ import annotations

import weakref
from struct import pack_into, unpack_from

from repro.arch.functional_units import NON_PIPELINED_OPS
from repro.arch.stats import REUSE_BUCKET_INDEX
from repro.isa.memory import _PAGE_SHIFT, _PAGE_SIZE
from repro.isa.opcodes import FuClass, InstrClass, Opcode
from repro.isa.program import INSTRUCTION_BYTES, Program
from repro.isa.semantics import (
    _FP_CMP,
    _FP_MEM_OPS,
    _FP_R2,
    _FP_R3,
    _INT_MEM_SPECS,
    _INT_R2I,
    _INT_R3,
    _INT_SHIFT,
    access_size,
    load_from_memory,
    sign_extend_16,
    store_to_memory,
    to_s32,
    zero_extend_16,
)

_PAGE_MASK = _PAGE_SIZE - 1

# struct formats reproducing semantics._extend for each (size, signed)
_INT_LD_FMTS = {(4, True): "<i", (4, False): "<I", (2, True): "<h",
                (2, False): "<H", (1, True): "<b", (1, False): "<B"}
_INT_ST_FMTS = {4: "<I", 2: "<H", 1: "<B"}

# Classification flag bits (column ``flags``).
F_CONTROL = 1 << 0
F_COND = 1 << 1          # conditional direct branch
F_MEM = 1 << 2
F_LOAD = 1 << 3
F_STORE = 1 << 4
F_CALL = 1 << 5          # direct or indirect call
F_RETURN = 1 << 6        # jr $ra
F_HALT = 1 << 7
F_NOPHALT = 1 << 8       # NOP or HALT (single-cycle, no result)
#: Loop-cache fill trigger: direct, non-call control with a backward
#: static target (the fetch unit's sbb condition).
F_LC_TRIGGER = 1 << 9
#: Statically loop-ending: BRANCH/JUMP with a backward target.  Combined
#: with a taken prediction this is ``LoopDetector.is_loop_ending``.
F_BACKWARD = 1 << 10

# Control-kind codes (column ``ctrl``): -1 for non-control instructions.
CTRL_BRANCH = 0
CTRL_JUMP = 1
CTRL_CALL = 2
CTRL_IJUMP = 3
CTRL_ICALL = 4

# Functional-unit codes (column ``fu``); index into the pool's unit
# lists.  4 means "no functional unit required".
FU_IALU = 0
FU_IMULT = 1
FU_FPALU = 2
FU_FPMULT = 3
FU_NONE = 4

_FU_CODES = {
    FuClass.IALU: FU_IALU,
    FuClass.IMULT: FU_IMULT,
    FuClass.FPALU: FU_FPALU,
    FuClass.FPMULT: FU_FPMULT,
    FuClass.NONE: FU_NONE,
}

_CTRL_CODES = {
    InstrClass.BRANCH: CTRL_BRANCH,
    InstrClass.JUMP: CTRL_JUMP,
    InstrClass.CALL: CTRL_CALL,
    InstrClass.IJUMP: CTRL_IJUMP,
    InstrClass.ICALL: CTRL_ICALL,
}

# Fused ALU kernels.  Each is one call frame: the wrapper lambdas and
# the to_s32 / to_u32 / sign_extend_16 helper calls of the semantics
# kernels are folded into inline mask-and-signfix arithmetic.  The
# masking identities used: ``to_u32(x) == x & _M32`` for any int;
# bitwise AND/OR/XOR commute with masking; ``to_s32`` of a value already
# in signed 32-bit range is the identity (so SRA/SRAV need no fixup and
# ANDI's non-negative result needs none either).
_M32 = 0xFFFFFFFF


def _fx_addu(a, b):
    v = (a + b) & 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _fx_subu(a, b):
    v = (a - b) & 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _fx_mult(a, b):
    v = (a * b) & 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _fx_and(a, b):
    v = (a & b) & 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _fx_or(a, b):
    v = (a | b) & 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _fx_xor(a, b):
    v = (a ^ b) & 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _fx_nor(a, b):
    v = ~(a | b) & 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _fx_sllv(a, b):
    v = ((a & 0xFFFFFFFF) << (b & 31)) & 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _fx_srlv(a, b):
    v = (a & 0xFFFFFFFF) >> (b & 31)
    return v - 0x100000000 if v >= 0x80000000 else v


def _fx_ftoi(a, b):
    if a != a:  # NaN
        return 0
    v = int(a) & 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


_FUSED_R3 = {
    Opcode.ADDU: _fx_addu,
    Opcode.SUBU: _fx_subu,
    Opcode.MULT: _fx_mult,
    Opcode.AND: _fx_and,
    Opcode.OR: _fx_or,
    Opcode.XOR: _fx_xor,
    Opcode.NOR: _fx_nor,
    Opcode.SLLV: _fx_sllv,
    Opcode.SRLV: _fx_srlv,
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SLTU: lambda a, b: 1 if (a & _M32) < (b & _M32) else 0,
    Opcode.SRAV: lambda a, b: a >> (b & 31),
}

_FUSED_FP = {
    Opcode.MOV_D: lambda a, b: a,
    Opcode.NEG_D: lambda a, b: -a,
    Opcode.ABS_D: lambda a, b: abs(a),
    Opcode.ITOF: lambda a, b: float(a),
    Opcode.FTOI: _fx_ftoi,
    Opcode.SLT_D: lambda a, b: 1 if a < b else 0,
    Opcode.SLE_D: lambda a, b: 1 if a <= b else 0,
    Opcode.SEQ_D: lambda a, b: 1 if a == b else 0,
}


def _fused_imm_closure(op, imm):
    """A one-frame kernel for a register-immediate ALU instruction."""
    if op is Opcode.ADDIU:
        se = sign_extend_16(imm)

        def fx(a, b, _i=se):
            v = (a + _i) & 0xFFFFFFFF
            return v - 0x100000000 if v >= 0x80000000 else v
        return fx
    if op is Opcode.ANDI:
        # zero-extended mask, result always in [0, 0xFFFF]
        ze = zero_extend_16(imm)
        return lambda a, b, _i=ze: a & _i
    if op is Opcode.ORI or op is Opcode.XORI:
        ze = zero_extend_16(imm)
        if op is Opcode.ORI:
            def fx(a, b, _i=ze):
                v = (a | _i) & 0xFFFFFFFF
                return v - 0x100000000 if v >= 0x80000000 else v
        else:
            def fx(a, b, _i=ze):
                v = (a ^ _i) & 0xFFFFFFFF
                return v - 0x100000000 if v >= 0x80000000 else v
        return fx
    if op is Opcode.SLTI:
        se = sign_extend_16(imm)
        return lambda a, b, _i=se: 1 if a < _i else 0
    if op is Opcode.SLTIU:
        ue = sign_extend_16(imm) & _M32
        return lambda a, b, _i=ue: 1 if (a & _M32) < _i else 0
    if op is Opcode.SLL:
        sh = imm & 31

        def fx(a, b, _s=sh):
            v = ((a & 0xFFFFFFFF) << _s) & 0xFFFFFFFF
            return v - 0x100000000 if v >= 0x80000000 else v
        return fx
    if op is Opcode.SRL:
        sh = imm & 31

        def fx(a, b, _s=sh):
            v = (a & 0xFFFFFFFF) >> _s
            return v - 0x100000000 if v >= 0x80000000 else v
        return fx
    if op is Opcode.SRA:
        sh = imm & 31
        return lambda a, b, _s=sh: a >> _s
    return None


# Mirrors semantics.branch_taken, one closure per opcode so the execute
# stage skips the if-chain.
_BRANCH_FNS = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLEZ: lambda a, b: a <= 0,
    Opcode.BGTZ: lambda a, b: a > 0,
    Opcode.BLTZ: lambda a, b: a < 0,
    Opcode.BGEZ: lambda a, b: a >= 0,
}


def _exec_closure(op, imm):
    """A uniform ``(a, b) -> value`` kernel for one ALU/FP instruction.

    Binds the immediate (and the kernel) at predecode so the execute
    stage makes exactly one call per instruction.  Common ALU opcodes
    use the fused one-frame kernels above (bit-identical to the
    :mod:`repro.isa.semantics` kernels they replace); anything without a
    fused form falls through to the semantics tables so new opcodes
    work unmodified.  Memory, control, NOP and HALT instructions return
    None -- they are handled by dedicated paths.
    """
    fn = _FUSED_R3.get(op)
    if fn is not None:
        return fn
    fn = _fused_imm_closure(op, imm)
    if fn is not None:
        return fn
    if op is Opcode.LUI:
        const = to_s32(zero_extend_16(imm) << 16)
        return lambda a, b, _c=const: _c
    fn = _FP_R3.get(op)
    if fn is not None:
        return fn
    fn = _FUSED_FP.get(op)
    if fn is not None:
        return fn
    fn = _INT_R3.get(op)
    if fn is not None:
        return fn
    fn = _INT_R2I.get(op)
    if fn is not None:
        return lambda a, b, _fn=fn, _imm=imm: _fn(a, _imm)
    fn = _INT_SHIFT.get(op)
    if fn is not None:
        return lambda a, b, _fn=fn, _imm=imm: _fn(a, _imm)
    fn = _FP_R2.get(op)
    if fn is not None:
        return lambda a, b, _fn=fn: _fn(a)
    fn = _FP_CMP.get(op)
    if fn is not None:
        return fn
    return None


def _load_closure(op):
    """A ``(mem, pages, addr) -> value`` kernel for one load opcode.

    The fast path reads straight out of the :class:`SparseMemory` page
    (``struct.unpack_from``, no byte copies) when the access stays inside
    one page; page-crossing accesses fall back to
    :func:`repro.isa.semantics.load_from_memory`.  Unmapped pages read as
    zero, exactly like ``read_bytes``.
    """
    if op in _FP_MEM_OPS:
        def ld(mem, pages, addr, _uf=unpack_from, _op=op):
            if addr & _PAGE_MASK <= _PAGE_SIZE - 8:
                page = pages.get(addr >> _PAGE_SHIFT)
                if page is None:
                    return 0.0
                return _uf("<d", page, addr & _PAGE_MASK)[0]
            return load_from_memory(mem, _op, addr)
        return ld
    size, signed = _INT_MEM_SPECS[op]
    fmt = _INT_LD_FMTS[(size, signed)]
    limit = _PAGE_SIZE - size

    def ld(mem, pages, addr, _uf=unpack_from, _fmt=fmt, _op=op, _lim=limit):
        if addr & _PAGE_MASK <= _lim:
            page = pages.get(addr >> _PAGE_SHIFT)
            if page is None:
                return 0
            return _uf(_fmt, page, addr & _PAGE_MASK)[0]
        return load_from_memory(mem, _op, addr)
    return ld


def _store_closure(op):
    """A ``(mem, pages, addr, value) -> None`` kernel for one store opcode.

    Writes in place into the backing page (``struct.pack_into``),
    allocating the page like ``_page_for_write`` does; page-crossing
    accesses fall back to :func:`repro.isa.semantics.store_to_memory`.
    """
    if op in _FP_MEM_OPS:
        def st(mem, pages, addr, value, _pf=pack_into, _op=op):
            if addr & _PAGE_MASK <= _PAGE_SIZE - 8:
                pa = addr >> _PAGE_SHIFT
                page = pages.get(pa)
                if page is None:
                    page = bytearray(_PAGE_SIZE)
                    pages[pa] = page
                _pf("<d", page, addr & _PAGE_MASK, float(value))
                return
            store_to_memory(mem, _op, addr, value)
        return st
    size, _ = _INT_MEM_SPECS[op]
    fmt = _INT_ST_FMTS[size]
    mask = (1 << (size * 8)) - 1
    limit = _PAGE_SIZE - size

    def st(mem, pages, addr, value, _pf=pack_into, _fmt=fmt, _op=op,
           _mask=mask, _lim=limit):
        if addr & _PAGE_MASK <= _lim:
            pa = addr >> _PAGE_SHIFT
            page = pages.get(pa)
            if page is None:
                page = bytearray(_PAGE_SIZE)
                pages[pa] = page
            _pf(_fmt, page, addr & _PAGE_MASK, int(value) & _mask)
            return
        store_to_memory(mem, _op, addr, value)
    return st


class CoreImage:
    """One program predecoded into flat parallel columns."""

    __slots__ = (
        "program", "text_base", "text_size", "count",
        "insts", "ops", "flags", "ctrl", "fu", "lat", "busy",
        "dest", "src0", "src1", "nsrc", "ea_imm", "target",
        "loop_size", "memsize", "exec_fn", "br_fn", "ld_fn", "st_fn",
        "pcs", "bucket",
    )

    def __init__(self, program: Program):
        self.program = program
        self.text_base = program.text_base
        insts = list(program.instructions)
        n = len(insts)
        self.count = n
        self.text_size = n * INSTRUCTION_BYTES
        self.insts = insts                      # for predictor + disasm
        self.ops = [inst.op for inst in insts]  # for memory semantics
        flags = [0] * n
        ctrl = [-1] * n
        fu = [FU_NONE] * n
        lat = [1] * n
        busy = [1] * n          # cycles the issuing unit stays occupied
        dest = [-1] * n
        src0 = [-1] * n
        src1 = [-1] * n
        nsrc = [0] * n
        ea_imm = [0] * n
        target = [-1] * n
        loop_size = [0] * n
        memsize = [0] * n
        pcs = [0] * n
        bucket = [0] * n        # REUSE_TYPE_BUCKETS index per slot
        exec_fn = [None] * n
        br_fn = [None] * n
        ld_fn = [None] * n
        st_fn = [None] * n
        for i, inst in enumerate(insts):
            op = inst.op
            icls = op.icls
            f = 0
            if inst.is_control:
                f |= F_CONTROL
                ctrl[i] = _CTRL_CODES[icls]
            if inst.is_conditional_branch:
                f |= F_COND
                br_fn[i] = _BRANCH_FNS[op]
            if inst.is_mem:
                f |= F_MEM
                memsize[i] = access_size(op)
            if inst.is_load:
                f |= F_LOAD
                ld_fn[i] = _load_closure(op)
            if inst.is_store:
                f |= F_STORE
                st_fn[i] = _store_closure(op)
            if inst.is_call:
                f |= F_CALL
            if inst.is_return:
                f |= F_RETURN
            if inst.is_halt:
                f |= F_HALT
            if icls is InstrClass.NOP or icls is InstrClass.HALT:
                f |= F_NOPHALT
            if (inst.is_direct_control and not inst.is_call
                    and inst.target is not None and inst.target <= inst.pc):
                f |= F_LC_TRIGGER
            if (icls in (InstrClass.BRANCH, InstrClass.JUMP)
                    and inst.target is not None and inst.target <= inst.pc):
                f |= F_BACKWARD
                loop_size[i] = ((inst.pc - inst.target)
                                // INSTRUCTION_BYTES + 1)
            fu[i] = _FU_CODES[op.fu]
            lat[i] = op.latency
            busy[i] = op.latency if op in NON_PIPELINED_OPS else 1
            if inst.dest is not None:
                dest[i] = inst.dest
            srcs = inst.srcs
            nsrc[i] = len(srcs)
            if srcs:
                src0[i] = srcs[0]
                if len(srcs) > 1:
                    src1[i] = srcs[1]
            ea_imm[i] = sign_extend_16(inst.imm)
            if inst.target is not None:
                target[i] = inst.target
            pcs[i] = inst.pc
            bucket[i] = REUSE_BUCKET_INDEX[icls]
            flags[i] = f
            if not (f & (F_CONTROL | F_MEM | F_NOPHALT)):
                exec_fn[i] = _exec_closure(op, inst.imm)
        self.flags = flags
        self.ctrl = ctrl
        self.fu = fu
        self.lat = lat
        self.busy = busy
        self.dest = dest
        self.src0 = src0
        self.src1 = src1
        self.nsrc = nsrc
        self.ea_imm = ea_imm
        self.target = target
        self.loop_size = loop_size
        self.memsize = memsize
        self.exec_fn = exec_fn
        self.br_fn = br_fn
        self.ld_fn = ld_fn
        self.st_fn = st_fn
        self.pcs = pcs
        self.bucket = bucket


_IMAGES: "weakref.WeakKeyDictionary[Program, CoreImage]" = \
    weakref.WeakKeyDictionary()


def image_for(program: Program) -> CoreImage:
    """The (cached) predecoded image of one program."""
    image = _IMAGES.get(program)
    if image is None:
        image = CoreImage(program)
        _IMAGES[program] = image
    return image
