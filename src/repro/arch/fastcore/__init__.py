"""The array-based pipeline core (flat-state no-probe fast path)."""

from repro.arch.fastcore.image import CoreImage, image_for
from repro.arch.fastcore.pipeline import FastControllerView, FastPipeline

__all__ = ["CoreImage", "FastControllerView", "FastPipeline", "image_for"]
