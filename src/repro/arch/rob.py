"""Reorder buffer.

An in-order container of :class:`~repro.arch.dyninst.DynInst` records.  The
paper's baseline keeps the ROB *separate* from the issue queue (unlike
SimpleScalar's merged RUU), which is what allows the reuse mechanism to keep
instructions resident in the issue queue after issue while their dynamic
instances retire through the ROB normally.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.arch.dyninst import DynInst


class ReorderBuffer:
    """FIFO of in-flight dynamic instructions in program order."""

    __slots__ = ("capacity", "entries")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: Deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        """True when no further instruction can dispatch."""
        return len(self.entries) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when nothing is in flight."""
        return not self.entries

    def allocate(self, dyn: DynInst) -> None:
        """Append a newly dispatched instruction (must not be full)."""
        if self.full:
            raise RuntimeError("ROB overflow")
        self.entries.append(dyn)

    def head(self) -> Optional[DynInst]:
        """Oldest in-flight instruction, or None."""
        return self.entries[0] if self.entries else None

    def retire_head(self) -> DynInst:
        """Remove and return the oldest instruction (at commit)."""
        return self.entries.popleft()

    def squash_younger_than(self, seq: int) -> List[DynInst]:
        """Remove every instruction with sequence number > ``seq``.

        Returns the squashed instructions (youngest first), each flagged
        ``squashed`` so lazily-kept references (ready heap, FU completion
        events) can discard them.
        """
        squashed: List[DynInst] = []
        entries = self.entries
        while entries and entries[-1].seq > seq:
            dyn = entries.pop()
            dyn.squashed = True
            squashed.append(dyn)
        return squashed
