"""The issue queue, with the augmentation the paper adds.

Baseline behaviour (a collapsing unified issue queue):

* dispatch inserts a renamed instruction with its operand readiness,
* completed producers *wake up* waiting entries,
* the select logic issues up to ``issue_width`` ready entries per cycle,
  oldest first,
* issued entries are removed (the queue collapses).

The paper's augmentation adds to every entry a **classification bit** ("this
instruction belongs to a loop being buffered"), an **issue state bit**
("the buffered instruction's current instance has issued"), and room in the
**logical register list (LRL)** for the entry's logical register numbers.
An entry whose classification bit is set is *not* removed when it issues; it
stays resident so the reuse pointer can re-dispatch it.  The bookkeeping for
buffering and reuse lives in :mod:`repro.core`; this module provides the
structure both modes share.

Selection uses an age-ordered ready heap keyed by the sequence number of the
entry's current dynamic instance, giving oldest-first select in O(log n)
instead of a positional scan (the collapsing behaviour itself has no timing
consequence, only energy, which the power model charges per remove).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

from repro.arch.dyninst import DynInst
from repro.isa.instruction import Instruction


class IQEntry:
    """One issue-queue entry.

    For ordinary instructions the entry lives from dispatch to issue.  For
    buffered (classification-bit) instructions the entry persists across
    dynamic instances: ``dyn`` is re-pointed at each pass of the reuse
    pointer and only operand readiness, the ROB pointer and the issue state
    bit change -- the paper's cheap *partial update*.
    """

    __slots__ = ("inst", "dyn", "pending", "ready", "classification",
                 "issue_state", "in_queue", "recorded_taken",
                 "recorded_target")

    def __init__(self, inst: Instruction, dyn: DynInst):
        self.inst = inst
        self.dyn = dyn
        #: Number of not-yet-ready source operands.
        self.pending = 0
        self.ready = False
        #: The paper's classification bit: entry belongs to a buffered loop.
        self.classification = False
        #: The paper's issue state bit: current instance has issued.
        self.issue_state = False
        self.in_queue = False
        #: Branch outcome recorded during Loop Buffering, replayed as the
        #: static prediction during Code Reuse.
        self.recorded_taken: Optional[bool] = None
        self.recorded_target: Optional[int] = None

    def __repr__(self) -> str:
        bits = f"c={int(self.classification)} s={int(self.issue_state)}"
        return f"<IQEntry {self.inst.disassemble()} {bits}>"


class IssueQueue:
    """Unified collapsing issue queue with reuse augmentation hooks."""

    __slots__ = ("capacity", "entries", "_ready_heap", "_heap_counter")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: Set[IQEntry] = set()
        self._ready_heap: List[Tuple[int, int, IQEntry]] = []
        self._heap_counter = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def occupancy(self) -> int:
        """Number of occupied entries."""
        return len(self.entries)

    @property
    def free_entries(self) -> int:
        """Number of free entries (the buffering-continuation check)."""
        return self.capacity - len(self.entries)

    @property
    def full(self) -> bool:
        """True when dispatch must stall."""
        return len(self.entries) >= self.capacity

    # -- dispatch side -----------------------------------------------------

    def insert(self, entry: IQEntry) -> None:
        """Insert a freshly renamed entry (must not be full)."""
        if self.full:
            raise RuntimeError("issue queue overflow")
        entry.in_queue = True
        self.entries.add(entry)
        if entry.pending == 0:
            self.mark_ready(entry)

    def mark_ready(self, entry: IQEntry) -> None:
        """Push an entry whose operands are all available into the ready set."""
        if entry.ready:
            return
        entry.ready = True
        self._heap_counter += 1
        heapq.heappush(self._ready_heap,
                       (entry.dyn.seq, self._heap_counter, entry))

    def wakeup(self, entry: IQEntry) -> None:
        """One of the entry's producers completed; decrement and maybe ready."""
        entry.pending -= 1
        if entry.pending == 0 and entry.in_queue and not entry.dyn.issued:
            self.mark_ready(entry)

    # -- select side -----------------------------------------------------------

    def pop_ready(self) -> Optional[IQEntry]:
        """Oldest ready, issuable entry; None if none remain this cycle.

        Lazily discards stale heap records (squashed instances, already
        issued instances, re-renamed buffered entries).
        """
        heap = self._ready_heap
        while heap:
            seq, _, entry = heapq.heappop(heap)
            dyn = entry.dyn
            if (entry.in_queue and entry.ready and not dyn.issued
                    and not dyn.squashed and dyn.seq == seq):
                entry.ready = False
                return entry
        return None

    def requeue(self, entry: IQEntry) -> None:
        """Put a popped entry back (no functional unit was available)."""
        self.mark_ready(entry)

    # -- removal ---------------------------------------------------------------

    def remove(self, entry: IQEntry) -> None:
        """Remove an entry (issue of a non-buffered instruction, or revoke)."""
        entry.in_queue = False
        entry.ready = False
        self.entries.discard(entry)

    def squash_younger_than(self, seq: int) -> int:
        """Remove entries whose current instance is younger than ``seq``.

        Buffered entries are removed as well -- on any misprediction while
        buffering or reusing, the controller's revoke path clears whatever
        survives.  Returns the number of entries removed.
        """
        victims = [e for e in self.entries if e.dyn.seq > seq]
        for entry in victims:
            self.remove(entry)
        return len(victims)

    def reset(self) -> None:
        """Empty the queue entirely."""
        self.entries.clear()
        self._ready_heap.clear()
