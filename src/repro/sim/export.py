"""Machine-readable export of simulation results.

Turns :class:`~repro.sim.results.SimulationResult` and
:class:`~repro.sim.results.RunComparison` objects into plain dicts / JSON
for downstream tooling (plotting scripts, regression dashboards).  The CLI
exposes this through ``--json``.

Two levels of export exist:

* :func:`result_to_dict` -- the *reporting* export: headline metrics,
  counters and per-component power, for humans and plotting scripts;
* :func:`result_to_payload` / :func:`result_from_payload` -- the
  *round-trip* export used by the persistent result cache in
  :mod:`repro.runner.cache`.  Since schema 3 the payload carries only the
  run's :class:`~repro.power.activity.ActivityRecord` -- timing facts,
  never derived energies -- and :func:`result_from_payload` re-derives a
  :class:`SimulationResult` under whatever power parameters the caller
  wants.  JSON preserves Python floats bit-for-bit, so re-derived metrics
  are byte-identical to a fresh simulation's.

:data:`SCHEMA_VERSION` versions the round-trip payload; cache entries
written under a different version are treated as stale and re-run.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.arch.stats import PipelineStats
from repro.power.activity import ActivityRecord
from repro.power.params import DEFAULT_PARAMS, PowerParams
from repro.sim.results import RunComparison, SimulationResult
from repro.sim.simulator import evaluate_power

__all__ = [
    "SCHEMA_VERSION", "config_to_dict", "result_to_dict",
    "comparison_to_dict", "result_to_payload", "result_from_payload",
    "stats_from_dict", "to_json",
]

#: Version of the round-trip payload layout.  Bump whenever the payload
#: shape or the meaning of a persisted field changes; persistent cache
#: entries with a different version are evicted and recomputed.
#: History: 2 carried a full result (stats + energies under one parameter
#: set); 3 carries the activity record only, so one cached timing run
#: serves every power parameterization; 4 adds the pipeline-core engine
#: to the job content-hash key (array/object runs never share entries),
#: invalidating every pre-engine cache entry; 5 adds the reuse-mode
#: selector (loop vs trace controller) and trace-head table size to the
#: config payload and the activity record's ``trace`` counter group.
SCHEMA_VERSION = 5


def config_to_dict(config) -> Dict[str, Any]:
    """The interesting knobs of a machine configuration."""
    return {
        "iq_size": config.iq_size,
        "rob_size": config.rob_size,
        "lsq_size": config.lsq_size,
        "fetch_width": config.fetch_width,
        "issue_width": config.issue_width,
        "reuse_enabled": config.reuse_enabled,
        "reuse_mode": config.reuse_mode,
        "buffering_strategy": config.buffering_strategy,
        "nblt_size": config.nblt_size,
        "tht_size": config.tht_size,
        "loop_cache_size": config.loop_cache_size,
    }


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Full export of one run: config, headline metrics, counters, power."""
    stats = result.stats
    return {
        "program": result.program_name,
        "config": config_to_dict(result.config),
        "metrics": {
            "cycles": result.cycles,
            "committed": result.stats.committed,
            "ipc": result.ipc,
            "gated_fraction": result.gated_fraction,
            "total_energy": result.total_energy,
            "avg_power": result.avg_power,
            "revoke_rate": stats.revoke_rate,
            "loop_detections": stats.loop_detections,
            "buffering_started": stats.buffering_started,
        },
        "counters": {key: int(value)
                     for key, value in result.activity.items()},
        "revokes": {
            "total": stats.revokes,
            "buffering": stats.buffering_revokes,
            "inner_loop": stats.revokes_inner_loop,
            "exit": stats.revokes_exit,
            "iq_full": stats.revokes_iq_full,
            "mispredict": stats.revokes_mispredict,
            "divergence": stats.revokes_divergence,
        },
        "power": {
            name: {
                "active_energy": component.active_energy,
                "base_energy": component.base_energy,
                "avg_power": component.avg_power,
            }
            for name, component in result.energies.items()
        },
    }


def comparison_to_dict(comparison: RunComparison) -> Dict[str, Any]:
    """Export a baseline-vs-reuse comparison with both runs embedded."""
    return {
        "summary": comparison.summary(),
        "baseline": result_to_dict(comparison.baseline),
        "reuse": result_to_dict(comparison.reuse),
    }


def result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    """Round-trip export: the timing facts needed to rebuild the result.

    Unlike :func:`result_to_dict` (a reporting format), this persists the
    run's :class:`~repro.power.activity.ActivityRecord` -- every counter
    plus the final architectural register file -- from which
    :func:`result_from_payload` re-derives a :class:`SimulationResult`
    under any power parameters.  Energies are *not* stored: they are
    arithmetic over the record.  The machine configuration is likewise
    not embedded -- the caller (the job cache) already owns the
    authoritative :class:`~repro.arch.config.MachineConfig` and passes it
    back in.
    """
    activity = result.activity
    if not isinstance(activity, ActivityRecord):
        activity = ActivityRecord(program_name=result.program_name,
                                  counters=dict(activity),
                                  registers=list(result.registers))
    return {
        "schema": SCHEMA_VERSION,
        "record": activity.to_payload(),
    }


def stats_from_dict(counters: Dict[str, int]) -> PipelineStats:
    """Rebuild a :class:`PipelineStats` from its :meth:`as_dict` export.

    Unknown keys (from a different stats layout) raise ``KeyError`` so the
    cache treats the entry as stale rather than silently dropping data.
    """
    stats = PipelineStats()
    for name, value in counters.items():
        if name not in PipelineStats.__slots__:
            raise KeyError(f"unknown pipeline counter {name!r}")
        setattr(stats, name, value)
    return stats


def result_from_payload(payload: Dict[str, Any], config,
                        params: PowerParams = DEFAULT_PARAMS
                        ) -> SimulationResult:
    """Inverse of :func:`result_to_payload`.

    ``config`` is the :class:`~repro.arch.config.MachineConfig` the run was
    executed under (owned by the job spec, not the payload); ``params``
    selects the power parameterization the rebuilt result is costed
    under -- the payload itself is parameter-free.  Raises ``KeyError`` /
    ``TypeError`` / ``ValueError`` on malformed payloads -- callers (the
    persistent cache) treat any of those as a stale entry.
    """
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"payload schema {payload.get('schema')!r} != {SCHEMA_VERSION}")
    record = ActivityRecord.from_payload(payload["record"])
    return evaluate_power(record, config, params)


def to_json(obj, indent: int = 2) -> str:
    """Serialise a result or comparison to JSON text."""
    if isinstance(obj, SimulationResult):
        payload = result_to_dict(obj)
    elif isinstance(obj, RunComparison):
        payload = comparison_to_dict(obj)
    elif isinstance(obj, dict):
        payload = obj
    else:
        raise TypeError(f"cannot export {type(obj).__name__}")
    return json.dumps(payload, indent=indent, sort_keys=True)
