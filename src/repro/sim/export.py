"""Machine-readable export of simulation results.

Turns :class:`~repro.sim.results.SimulationResult` and
:class:`~repro.sim.results.RunComparison` objects into plain dicts / JSON
for downstream tooling (plotting scripts, regression dashboards).  The CLI
exposes this through ``--json``.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.sim.results import RunComparison, SimulationResult


def config_to_dict(config) -> Dict[str, Any]:
    """The interesting knobs of a machine configuration."""
    return {
        "iq_size": config.iq_size,
        "rob_size": config.rob_size,
        "lsq_size": config.lsq_size,
        "fetch_width": config.fetch_width,
        "issue_width": config.issue_width,
        "reuse_enabled": config.reuse_enabled,
        "buffering_strategy": config.buffering_strategy,
        "nblt_size": config.nblt_size,
        "loop_cache_size": config.loop_cache_size,
    }


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Full export of one run: config, headline metrics, counters, power."""
    return {
        "program": result.program_name,
        "config": config_to_dict(result.config),
        "metrics": {
            "cycles": result.cycles,
            "committed": result.stats.committed,
            "ipc": result.ipc,
            "gated_fraction": result.gated_fraction,
            "total_energy": result.total_energy,
            "avg_power": result.avg_power,
        },
        "counters": {key: int(value)
                     for key, value in result.activity.items()},
        "power": {
            name: {
                "active_energy": component.active_energy,
                "base_energy": component.base_energy,
                "avg_power": component.avg_power,
            }
            for name, component in result.energies.items()
        },
    }


def comparison_to_dict(comparison: RunComparison) -> Dict[str, Any]:
    """Export a baseline-vs-reuse comparison with both runs embedded."""
    return {
        "summary": comparison.summary(),
        "baseline": result_to_dict(comparison.baseline),
        "reuse": result_to_dict(comparison.reuse),
    }


def to_json(obj, indent: int = 2) -> str:
    """Serialise a result or comparison to JSON text."""
    if isinstance(obj, SimulationResult):
        payload = result_to_dict(obj)
    elif isinstance(obj, RunComparison):
        payload = comparison_to_dict(obj)
    elif isinstance(obj, dict):
        payload = obj
    else:
        raise TypeError(f"cannot export {type(obj).__name__}")
    return json.dumps(payload, indent=indent, sort_keys=True)
