"""One-call reproduction of the paper's full evaluation.

:func:`reproduce_all` runs every experiment and returns the rendered
report; the ``examples/reproduce_paper.py`` script and the
``python -m repro reproduce`` CLI both delegate here.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.arch.config import SWEEP_IQ_SIZES, MachineConfig
from repro.sim.experiments import ExperimentRunner
from repro.sim.report import format_comparison_rows, format_percent_table
from repro.workloads.suite import WorkloadSuite

#: Experiment identifiers accepted by :func:`reproduce`.
EXPERIMENT_NAMES = ("table1", "table2", "fig5", "fig6", "fig7", "fig8",
                    "fig9", "nblt", "strategy")


def _table1(runner: ExperimentRunner) -> str:
    return ("Table 1: baseline configuration\n"
            + MachineConfig().table1())


def _table2(runner: ExperimentRunner) -> str:
    return "Table 2: benchmarks\n" + WorkloadSuite().table2()


def _fig5(runner: ExperimentRunner) -> str:
    return format_percent_table(
        "Figure 5: pipeline front-end gated rate (in cycles)",
        runner.figure5_gating(), list(SWEEP_IQ_SIZES),
        column_header="benchmark")


def _fig6(runner: ExperimentRunner) -> str:
    return format_percent_table(
        "Figure 6: component power reduction (average)",
        runner.figure6_component_power(), list(SWEEP_IQ_SIZES),
        column_header="component")


def _fig7(runner: ExperimentRunner) -> str:
    return format_percent_table(
        "Figure 7: overall power reduction",
        runner.figure7_overall_power(), list(SWEEP_IQ_SIZES),
        column_header="benchmark")


def _fig8(runner: ExperimentRunner) -> str:
    return format_percent_table(
        "Figure 8: performance (IPC) degradation",
        runner.figure8_performance(), list(SWEEP_IQ_SIZES),
        column_header="benchmark")


def _fig9(runner: ExperimentRunner) -> str:
    return format_comparison_rows(
        "Figure 9: impact of compiler optimizations (IQ 64)",
        runner.figure9_compiler_optimization(),
        ["original", "optimized", "original_gated", "optimized_gated",
         "original_ipc_degradation", "optimized_ipc_degradation"],
        ["orig pwr", "opt pwr", "orig gate", "opt gate", "orig dIPC",
         "opt dIPC"])


def _nblt(runner: ExperimentRunner) -> str:
    return format_comparison_rows(
        "Ablation: NBLT effect on buffering revoke rate (IQ 64)",
        runner.nblt_ablation(),
        ["revoke_rate_with_nblt", "revoke_rate_without_nblt",
         "gated_with_nblt", "gated_without_nblt"],
        ["rev w/", "rev w/o", "gate w/", "gate w/o"])


def _strategy(runner: ExperimentRunner) -> str:
    return format_comparison_rows(
        "Ablation: buffering strategy single vs multi (IQ 64)",
        runner.strategy_ablation(),
        ["gated_multi", "gated_single", "ipc_degradation_multi",
         "ipc_degradation_single"],
        ["gate multi", "gate single", "dIPC multi", "dIPC single"])


_BUILDERS = {
    "table1": _table1,
    "table2": _table2,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "nblt": _nblt,
    "strategy": _strategy,
}


def reproduce(names: Optional[List[str]] = None,
              runner: Optional[ExperimentRunner] = None,
              echo: Optional[Callable[[str], None]] = print) -> str:
    """Run the selected experiments (default: all); returns the report.

    ``echo`` is called with each experiment's table as it completes (pass
    None to stay silent until the end).
    """
    names = list(names) if names else list(EXPERIMENT_NAMES)
    unknown = [n for n in names if n not in _BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown experiments {unknown}; choose from "
            f"{EXPERIMENT_NAMES}")
    runner = runner or ExperimentRunner()
    start = time.time()
    sections = []
    for name in names:
        section = _BUILDERS[name](runner)
        sections.append(section)
        if echo is not None:
            echo(section)
            echo("")
    footer = f"total wall time: {time.time() - start:.0f}s"
    if echo is not None:
        echo(footer)
    return "\n\n".join(sections) + "\n\n" + footer


def reproduce_all(echo: Optional[Callable[[str], None]] = print,
                  runner: Optional[ExperimentRunner] = None) -> str:
    """Run the complete evaluation (all tables, figures and ablations).

    Pass an executor-backed runner (see :func:`repro.runner.build_runner`)
    to parallelise the sweep and reuse the persistent result cache.
    """
    return reproduce(runner=runner, echo=echo)
