"""Simulation result records and baseline-vs-reuse comparisons.

The paper's evaluation metrics are all *relative*:

* Figure 5: fraction of total cycles with the front-end gated,
* Figure 6: per-component per-cycle power reduction (icache / bpred /
  issue queue) plus the overhead component's share,
* Figure 7: overall per-cycle power reduction,
* Figure 8: IPC degradation.

:class:`RunComparison` computes all of them from a baseline
:class:`SimulationResult` and a reuse-enabled one.

A result holds the run's *activity* (timing facts) and derives its
*energies* lazily from ``params`` on first access, so the same timing run
can be re-costed under any power parameterization --
:meth:`SimulationResult.reevaluate` and :meth:`RunComparison.reevaluate`
return cheap re-costed views sharing the original activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

from repro.arch.config import MachineConfig
from repro.arch.stats import PipelineStats
from repro.power.components import (
    ComponentEnergy,
    power_reduction,
    total_power_reduction,
)
from repro.power.model import PowerModel
from repro.power.params import DEFAULT_PARAMS, PowerParams


@dataclass
class SimulationResult:
    """Everything one run produced.

    ``activity`` is the timing run's full counter snapshot (normally an
    :class:`~repro.power.activity.ActivityRecord`); ``energies`` is
    derived from it on demand using ``params``, never stored by the
    timing layer.
    """

    program_name: str
    config: MachineConfig
    stats: PipelineStats
    activity: Mapping
    registers: List
    params: PowerParams = DEFAULT_PARAMS
    pipeline: Optional[object] = field(default=None, repr=False,
                                       compare=False)
    #: The run's :class:`~repro.telemetry.TelemetrySession`, when one was
    #: threaded through the simulation (``simulate(..., telemetry=...)``).
    telemetry: Optional[object] = field(default=None, repr=False,
                                        compare=False)
    _energies: Optional[Dict[str, ComponentEnergy]] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def energies(self) -> Dict[str, ComponentEnergy]:
        """Per-component energies under ``params`` (computed lazily)."""
        if self._energies is None:
            self._energies = PowerModel(
                self.config, self.params).component_energies(self.activity)
        return self._energies

    def reevaluate(self, params: Optional[PowerParams] = None,
                   style: Optional[str] = None) -> "SimulationResult":
        """This timing run re-costed under different power parameters.

        ``params`` replaces the parameter set (default: the current one);
        ``style`` additionally applies a Wattch conditional-clocking
        style (``cc0``/``cc1``/``cc3``).  The returned result shares the
        activity record, statistics and registers -- no simulation runs.
        """
        new_params = params if params is not None else self.params
        if style is not None:
            new_params = new_params.for_clocking_style(style)
        return replace(self, params=new_params, pipeline=None)

    @property
    def cycles(self) -> int:
        """Total execution cycles."""
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.stats.ipc

    @property
    def gated_fraction(self) -> float:
        """Fraction of cycles with the pipeline front-end gated."""
        return self.stats.gated_fraction

    @property
    def total_energy(self) -> float:
        """Total energy over the run (all components)."""
        return sum(c.total_energy for c in self.energies.values())

    @property
    def avg_power(self) -> float:
        """Average per-cycle power (the paper's comparison quantity)."""
        return self.total_energy / self.cycles if self.cycles else 0.0

    def component_power(self, name: str) -> float:
        """Per-cycle average power of one component."""
        return self.energies[name].avg_power

    def __repr__(self) -> str:
        return (f"<SimulationResult {self.program_name}: "
                f"{self.cycles} cycles, ipc={self.ipc:.3f}, "
                f"gated={self.gated_fraction:.1%}>")


@dataclass
class RunComparison:
    """Baseline vs reuse-enabled comparison for one workload/configuration."""

    baseline: SimulationResult
    reuse: SimulationResult

    def __post_init__(self):
        if self.baseline.stats.committed != self.reuse.stats.committed:
            # The mechanism never changes the committed instruction stream;
            # a mismatch means a simulator bug, so fail loudly.
            raise ValueError(
                f"committed-instruction mismatch for "
                f"{self.baseline.program_name}: "
                f"{self.baseline.stats.committed} vs "
                f"{self.reuse.stats.committed}")

    @property
    def gated_fraction(self) -> float:
        """Figure 5 metric: gated fraction of the reuse run."""
        return self.reuse.gated_fraction

    def component_power_reduction(self, name: str) -> float:
        """Figure 6 metric: per-cycle power reduction of one component."""
        return power_reduction(self.baseline.energies[name],
                               self.reuse.energies[name])

    @property
    def overhead_fraction(self) -> float:
        """Figure 6 overhead bar: reuse hardware power as a fraction of
        the baseline machine's total per-cycle power."""
        if self.baseline.avg_power == 0.0:
            return 0.0
        return self.reuse.component_power("overhead") / self.baseline.avg_power

    @property
    def overall_power_reduction(self) -> float:
        """Figure 7 metric: overall per-cycle power reduction."""
        return total_power_reduction(self.baseline.energies,
                                     self.reuse.energies)

    @property
    def ipc_degradation(self) -> float:
        """Figure 8 metric: relative IPC loss (positive = slower)."""
        if self.baseline.ipc == 0.0:
            return 0.0
        return 1.0 - self.reuse.ipc / self.baseline.ipc

    @property
    def energy_reduction(self) -> float:
        """Total-energy saving (not per-cycle power) of the reuse run."""
        if self.baseline.total_energy == 0.0:
            return 0.0
        return 1.0 - self.reuse.total_energy / self.baseline.total_energy

    @property
    def edp_improvement(self) -> float:
        """Energy-delay-product improvement (positive = better).

        EDP = total energy x execution cycles; the standard figure of
        merit for trading a little performance for power, which is
        exactly the bargain the paper's mechanism strikes.
        """
        baseline_edp = self.baseline.total_energy * self.baseline.cycles
        reuse_edp = self.reuse.total_energy * self.reuse.cycles
        if baseline_edp == 0.0:
            return 0.0
        return 1.0 - reuse_edp / baseline_edp

    def reevaluate(self, params: Optional[PowerParams] = None,
                   style: Optional[str] = None) -> "RunComparison":
        """Both runs re-costed under different power parameters.

        Same contract as :meth:`SimulationResult.reevaluate`; no timing
        simulation runs.
        """
        return RunComparison(
            baseline=self.baseline.reevaluate(params=params, style=style),
            reuse=self.reuse.reevaluate(params=params, style=style))

    def summary(self) -> Dict[str, float]:
        """All headline metrics as a dict (used by reports and tests)."""
        return {
            "gated_fraction": self.gated_fraction,
            "icache_power_reduction":
                self.component_power_reduction("icache"),
            "bpred_power_reduction":
                self.component_power_reduction("bpred"),
            "iq_power_reduction":
                self.component_power_reduction("issue_queue"),
            "overhead_fraction": self.overhead_fraction,
            "overall_power_reduction": self.overall_power_reduction,
            "ipc_degradation": self.ipc_degradation,
            "energy_reduction": self.energy_reduction,
            "edp_improvement": self.edp_improvement,
        }
