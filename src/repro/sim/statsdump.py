"""Full statistics dump (sim-outorder style).

:func:`render_stats` renders everything a finished
:class:`~repro.sim.results.SimulationResult` knows -- pipeline counters
with derived rates, memory-hierarchy behaviour, branch prediction accuracy,
reuse-mechanism activity and the per-component power breakdown -- in the
sectioned key/value format SimpleScalar users expect.
"""

from __future__ import annotations

from typing import List

from repro.sim.results import SimulationResult


def _bar(fraction: float, width: int = 24) -> str:
    """A small ASCII bar for the power breakdown."""
    fraction = max(0.0, min(1.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def _section(title: str) -> List[str]:
    return ["", f"## {title}", ""]


def _row(key: str, value, note: str = "") -> str:
    if isinstance(value, float):
        rendered = f"{value:12.4f}"
    else:
        rendered = f"{value:12d}"
    line = f"{key:32s} {rendered}"
    if note:
        line += f"   # {note}"
    return line


def render_stats(result: SimulationResult) -> str:
    """Render the complete statistics report for one run."""
    stats = result.stats
    activity = result.activity
    lines: List[str] = [
        f"sim: program '{result.program_name}' on IQ="
        f"{result.config.iq_size}, reuse="
        f"{'on' if result.config.reuse_enabled else 'off'}"
    ]

    lines += _section("pipeline")
    lines.append(_row("sim_cycle", stats.cycles, "total cycles"))
    lines.append(_row("sim_num_insn", stats.committed,
                      "committed instructions"))
    lines.append(_row("sim_IPC", stats.ipc))
    lines.append(_row("insn_fetched", stats.fetched,
                      "includes wrong path"))
    lines.append(_row("insn_decoded", stats.decoded))
    lines.append(_row("insn_dispatched", stats.dispatched))
    lines.append(_row("insn_issued", stats.issued))
    lines.append(_row("insn_squashed", stats.squashed,
                      "mispredict recoveries"))
    speculation = (stats.fetched / stats.committed
                   if stats.committed else 0.0)
    lines.append(_row("fetch_per_commit", speculation,
                      "speculation factor"))

    lines += _section("control flow")
    lines.append(_row("branches_committed", stats.branches_committed))
    lines.append(_row("cond_branches", stats.cond_branches_committed))
    lines.append(_row("mispredictions", stats.mispredicts))
    if stats.branches_committed:
        accuracy = 1 - stats.mispredicts / stats.branches_committed
        lines.append(_row("bpred_addr_rate", accuracy,
                          "committed-branch accuracy"))
    lines.append(_row("btb_bubbles", stats.btb_bubbles))

    lines += _section("memory hierarchy")
    for key, label in (
        ("icache_accesses", "il1 accesses"),
        ("icache_misses", "il1 misses"),
        ("dcache_accesses", "dl1 accesses"),
        ("dcache_misses", "dl1 misses"),
        ("l2_accesses", "l2 accesses"),
        ("dram_accesses", "dram accesses"),
        ("itlb_accesses", "itlb accesses"),
        ("dtlb_accesses", "dtlb accesses"),
    ):
        lines.append(_row(key, int(activity[key]), label))
    if activity["dcache_accesses"]:
        lines.append(_row("dl1_miss_rate",
                          activity["dcache_misses"]
                          / activity["dcache_accesses"]))
    lines.append(_row("lsq_forwards", stats.lsq_forwards,
                      "store-to-load forwards"))
    lines.append(_row("load_blocked_cycles", stats.load_blocked_cycles,
                      "disambiguation stalls"))

    if result.config.reuse_enabled:
        lines += _section("reuse mechanism")
        lines.append(_row("gated_cycles", stats.gated_cycles,
                          f"{stats.gated_fraction:.1%} of cycles"))
        lines.append(_row("cycles_normal", stats.cycles_normal))
        lines.append(_row("cycles_buffering", stats.cycles_buffering))
        lines.append(_row("cycles_reuse", stats.cycles_reuse))
        lines.append(_row("loop_detections", stats.loop_detections))
        lines.append(_row("buffering_started", stats.buffering_started))
        lines.append(_row("promotions", stats.promotions))
        lines.append(_row("buffered_instructions",
                          stats.buffered_instructions))
        lines.append(_row("buffered_iterations",
                          stats.buffered_iterations))
        lines.append(_row("reuse_supplied", stats.reuse_supplied,
                          "instructions from the reuse pointer"))
        lines.append(_row("buffering_revokes", stats.buffering_revokes,
                          f"rate {stats.revoke_rate:.1%}"))
        lines.append(_row("revokes_inner_loop", stats.revokes_inner_loop))
        lines.append(_row("revokes_exit", stats.revokes_exit))
        lines.append(_row("revokes_iq_full", stats.revokes_iq_full))
        lines.append(_row("reuse_mispredicts", stats.reuse_mispredicts,
                          "static prediction failed / loop exit"))
        lines.append(_row("nblt_hits", stats.nblt_hits,
                          f"of {stats.nblt_lookups} lookups"))

    lines += _section("power breakdown (per-cycle average)")
    total_power = result.avg_power
    ordered = sorted(result.energies.values(),
                     key=lambda c: c.total_energy, reverse=True)
    for component in ordered:
        share = (component.avg_power / total_power) if total_power else 0.0
        lines.append(
            f"{component.name:12s} {component.avg_power:10.1f}  "
            f"{share:6.1%}  {_bar(share)}")
    lines.append(f"{'total':12s} {total_power:10.1f}")

    return "\n".join(lines)
