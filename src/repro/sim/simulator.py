"""Top-level simulation entry point.

:func:`simulate` is the one call the examples, tests and benchmark harness
use: program + configuration in, :class:`~repro.sim.results.SimulationResult`
out (cycles, IPC, gating, per-component energy, final architectural state).
"""

from __future__ import annotations

from typing import Optional

from repro.arch.config import MachineConfig
from repro.arch.pipeline import Pipeline
from repro.isa.program import Program
from repro.power.model import PowerModel, collect_activity
from repro.power.params import DEFAULT_PARAMS, PowerParams
from repro.sim.results import SimulationResult


def simulate(program: Program, config: MachineConfig,
             params: PowerParams = DEFAULT_PARAMS,
             max_cycles: Optional[int] = None,
             keep_pipeline: bool = False) -> SimulationResult:
    """Run ``program`` to its committed ``halt`` on ``config``.

    Parameters
    ----------
    program:
        An assembled :class:`~repro.isa.program.Program`.
    config:
        The machine configuration (set ``reuse_enabled=True`` for the
        paper's mechanism).
    params:
        Power-model parameters (the calibrated defaults reproduce the
        paper's component weights).
    max_cycles:
        Optional cycle budget override.
    keep_pipeline:
        Attach the finished :class:`~repro.arch.pipeline.Pipeline` to the
        result (for tests that inspect microarchitectural state).
    """
    pipeline = Pipeline(program, config)
    stats = pipeline.run(max_cycles=max_cycles)
    activity = collect_activity(pipeline)
    energies = PowerModel(config, params).component_energies(activity)
    result = SimulationResult(
        program_name=program.name,
        config=config,
        stats=stats,
        activity=activity,
        energies=energies,
        registers=pipeline.architectural_registers(),
    )
    if keep_pipeline:
        result.pipeline = pipeline
    return result
