"""Top-level simulation entry points.

The timing/power split the paper's methodology implies (Wattch sitting on
top of SimpleScalar) is explicit here:

* :func:`run_timing` runs the cycle-level pipeline and returns an
  :class:`~repro.power.activity.ActivityRecord` -- the complete,
  serializable snapshot of what happened;
* :func:`evaluate_power` turns a record into a
  :class:`~repro.sim.results.SimulationResult` under any
  :class:`~repro.power.params.PowerParams` -- pure arithmetic, no
  simulation;
* :func:`simulate` composes the two and remains the one call the
  examples, tests and benchmark harness use.

Because a record is all power evaluation needs, one timing run can be
re-costed under any number of parameter sets (clocking styles,
calibration sweeps) -- the persistent result cache exploits exactly this.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.config import MachineConfig
from repro.arch.fastcore import FastPipeline
from repro.arch.pipeline import Pipeline
from repro.isa.program import Program
from repro.power.activity import ActivityRecord
from repro.power.params import DEFAULT_PARAMS, PowerParams
from repro.sim.results import SimulationResult

#: The selectable pipeline-core engines (see ``docs/pipeline.md``).
#: Both implement :class:`repro.arch.interface.CoreInterface` and
#: produce byte-identical activity records; ``array`` is the no-probe
#: fast path, ``object`` the reference implementation.
ENGINES = {
    "object": Pipeline,
    "array": FastPipeline,
}


def core_for(engine: str):
    """The pipeline-core class registered under ``engine``."""
    try:
        return ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; choose from "
            f"{', '.join(sorted(ENGINES))}") from None


def run_timing(program: Program, config: MachineConfig,
               max_cycles: Optional[int] = None,
               probes: Iterable = (),
               keep_pipeline: bool = False,
               telemetry=None,
               engine: str = "object"):
    """Run ``program`` to its committed ``halt``; timing only.

    Returns the run's :class:`~repro.power.activity.ActivityRecord`.
    ``probes`` are attached to the pipeline before it runs (tracers,
    invariant checkers, ...).  ``telemetry`` is an optional
    :class:`~repro.telemetry.TelemetrySession`: its probes are attached
    too, its self-profiler times the build/run/capture phases, and it
    absorbs the finished run so trace/metric artifacts can be exported
    afterwards (see ``docs/telemetry.md``).  With ``keep_pipeline=True``
    the return value is a ``(record, pipeline)`` pair instead.

    ``engine`` selects the pipeline core (:data:`ENGINES`): the two
    engines leave identical records, so the choice only affects wall
    time.  Attaching any probe (including telemetry) to the ``array``
    engine makes it fall back to a delegate object core internally --
    observability always wins over speed.
    """
    core = core_for(engine)
    if telemetry is None:
        pipeline = core(program, config)
        for probe in probes:
            pipeline.attach_probe(probe)
        pipeline.run(max_cycles=max_cycles)
        record = ActivityRecord.capture(pipeline)
    else:
        profiler = telemetry.profiler
        with profiler.phase("build-pipeline"):
            pipeline = core(program, config)
            for probe in probes:
                pipeline.attach_probe(probe)
            for probe in telemetry.probes:
                pipeline.attach_probe(probe)
        with profiler.phase("run-timing"):
            pipeline.run(max_cycles=max_cycles)
        with profiler.phase("capture-record"):
            record = ActivityRecord.capture(pipeline)
            telemetry.absorb(pipeline, record)
    if keep_pipeline:
        return record, pipeline
    return record


def evaluate_power(record: ActivityRecord, config: MachineConfig,
                   params: PowerParams = DEFAULT_PARAMS) -> SimulationResult:
    """Cost a finished timing run under ``params``; no simulation.

    Pure post-hoc arithmetic over the record's activity counters: calling
    this any number of times with different parameter sets (clocking
    styles, calibration variants) re-costs the same run for free.
    """
    return SimulationResult(
        program_name=record.program_name,
        config=config,
        stats=record.pipeline_stats(),
        activity=record,
        registers=list(record.registers),
        params=params,
    )


def simulate(program: Program, config: MachineConfig,
             params: PowerParams = DEFAULT_PARAMS,
             max_cycles: Optional[int] = None,
             keep_pipeline: bool = False,
             telemetry=None,
             engine: str = "object") -> SimulationResult:
    """Run ``program`` to its committed ``halt`` on ``config``.

    Parameters
    ----------
    program:
        An assembled :class:`~repro.isa.program.Program`.
    config:
        The machine configuration (set ``reuse_enabled=True`` for the
        paper's mechanism).
    params:
        Power-model parameters (the calibrated defaults reproduce the
        paper's component weights).
    max_cycles:
        Optional cycle budget override.
    keep_pipeline:
        Attach the finished :class:`~repro.arch.pipeline.Pipeline` to the
        result (for tests that inspect microarchitectural state).
    telemetry:
        Optional :class:`~repro.telemetry.TelemetrySession` threaded
        through the timing run and attached to the result.
    engine:
        Pipeline-core engine (``object`` or ``array``; see
        :data:`ENGINES` and ``docs/pipeline.md``).
    """
    record, pipeline = run_timing(program, config, max_cycles=max_cycles,
                                  keep_pipeline=True, telemetry=telemetry,
                                  engine=engine)
    result = evaluate_power(record, config, params)
    result.telemetry = telemetry
    if keep_pipeline:
        result.pipeline = pipeline
    return result
