"""The paper's experiments.

Every table and figure in the evaluation (Section 3) and the compiler study
(Section 4) is regenerated from the functions here:

* :func:`sweep` -- the master baseline-vs-reuse sweep over issue-queue
  sizes {32, 64, 128, 256} (ROB = IQ, LSQ = IQ/2) that Figures 5-8 share,
* :func:`figure5_gating`, :func:`figure6_component_power`,
  :func:`figure7_overall_power`, :func:`figure8_performance` -- the
  per-figure tables extracted from the sweep,
* :func:`figure9_compiler_optimization` -- original vs loop-distributed
  code at the 64-entry baseline,
* :func:`nblt_ablation` -- the Section 3 claim that an 8-entry NBLT cuts
  the buffering revoke rate from ~40 % to below 10 %,
* :func:`strategy_ablation` -- single- vs multi-iteration buffering
  (Section 2.2.1).

Results are cached per (program, config) within a :class:`ExperimentRunner`
so that the four figures sharing one sweep pay for it once.  All
simulations execute through a :class:`~repro.runner.executor.JobExecutor`:
the default is serial and memory-only (identical behaviour to running
:func:`~repro.sim.simulator.simulate` directly), while
:func:`repro.runner.build_runner` wires in process-pool parallelism and
the persistent on-disk result cache.  Every experiment *prefetches* the
full set of simulations it needs in one executor batch before reading any
of them, so a parallel executor sees the whole sweep at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.config import SWEEP_IQ_SIZES, MachineConfig
from repro.power.params import PowerParams
from repro.runner.executor import JobExecutor
from repro.runner.jobs import SimJob
from repro.sim.results import RunComparison, SimulationResult
from repro.workloads.suite import BENCHMARK_NAMES, WorkloadSuite


@dataclass
class SweepCell:
    """One (benchmark, issue-queue size) cell of the master sweep."""

    benchmark: str
    iq_size: int
    comparison: RunComparison

    @property
    def summary(self) -> Dict[str, float]:
        """Headline metrics of this cell."""
        return self.comparison.summary()


@dataclass
class ExperimentRunner:
    """Runs and caches all simulations behind the paper's figures."""

    benchmarks: Tuple[str, ...] = BENCHMARK_NAMES
    iq_sizes: Tuple[int, ...] = SWEEP_IQ_SIZES
    base_config: MachineConfig = field(default_factory=MachineConfig)
    suite: WorkloadSuite = field(default_factory=WorkloadSuite)
    executor: Optional[JobExecutor] = None
    _cache: Dict[tuple, SimulationResult] = field(default_factory=dict)

    def __post_init__(self):
        if self.executor is None:
            # serial, memory-only default: same behaviour as calling
            # simulate() directly, no persistent state
            self.executor = JobExecutor(jobs=1, cache=None,
                                        suite=self.suite)

    # -- execution through the runner subsystem -----------------------------

    def _config(self, iq_size: int, strategy: str = "multi",
                nblt_size: int = 8, reuse: bool = False) -> MachineConfig:
        return self.base_config.with_iq_size(iq_size).replace(
            buffering_strategy=strategy, nblt_size=nblt_size,
            reuse_enabled=reuse)

    def _pair_specs(self, benchmark: str, iq_size: int,
                    optimize: bool = False, strategy: str = "multi",
                    nblt_size: int = 8) -> List[tuple]:
        """The (benchmark, config, optimize) baseline/reuse spec pair."""
        return [
            (benchmark,
             self._config(iq_size, strategy, nblt_size, reuse=reuse),
             optimize)
            for reuse in (False, True)
        ]

    def prefetch(self, specs: Sequence[tuple]) -> None:
        """Resolve many (benchmark, config, optimize) specs in one batch.

        Specs already held in memory are skipped; the rest go to the
        executor as a single batch, so a parallel executor fans the whole
        sweep out at once and a persistent cache is probed exactly once
        per simulation.
        """
        wanted = []
        for benchmark, config, optimize in specs:
            key = (benchmark, optimize, config)
            if key not in self._cache:
                job = SimJob(benchmark=benchmark, config=config,
                             optimize=optimize)
                if job not in wanted:
                    wanted.append(job)
        if not wanted:
            return
        for job, result in self.executor.run(wanted).items():
            self._cache[(job.benchmark, job.optimize, job.config)] = result

    def _run(self, benchmark: str, config: MachineConfig,
             optimize: bool = False) -> SimulationResult:
        key = (benchmark, optimize, config)
        if key not in self._cache:
            self.prefetch([(benchmark, config, optimize)])
        return self._cache[key]

    def compare(self, benchmark: str, iq_size: int,
                optimize: bool = False,
                strategy: str = "multi",
                nblt_size: int = 8) -> RunComparison:
        """Baseline vs reuse for one benchmark/configuration."""
        specs = self._pair_specs(benchmark, iq_size, optimize,
                                 strategy, nblt_size)
        self.prefetch(specs)
        (_, base_config, _), (_, reuse_config, _) = specs
        baseline = self._run(benchmark, base_config, optimize)
        reuse = self._run(benchmark, reuse_config, optimize)
        return RunComparison(baseline, reuse)

    def reevaluate(self, benchmark: str, iq_size: int,
                   params: Optional[PowerParams] = None,
                   style: Optional[str] = None,
                   optimize: bool = False,
                   strategy: str = "multi",
                   nblt_size: int = 8) -> RunComparison:
        """A :meth:`compare` pair re-costed under other power parameters.

        The timing runs come from the cache (in-memory or persistent) --
        re-costing an already-simulated pair under a new clocking style
        or parameter file performs zero simulations.
        """
        comparison = self.compare(benchmark, iq_size, optimize=optimize,
                                  strategy=strategy, nblt_size=nblt_size)
        return comparison.reevaluate(params=params, style=style)

    # -- the master sweep (Figures 5-8) -------------------------------------

    def sweep(self, optimize: bool = False) -> List[SweepCell]:
        """All (benchmark, iq_size) cells.

        The full grid (benchmarks x IQ sizes x {baseline, reuse}) is
        prefetched as one executor batch, so the four figures sharing
        this sweep also share one parallel pass.
        """
        self.prefetch([
            spec
            for benchmark in self.benchmarks
            for iq_size in self.iq_sizes
            for spec in self._pair_specs(benchmark, iq_size,
                                         optimize=optimize)
        ])
        return [
            SweepCell(benchmark, iq_size,
                      self.compare(benchmark, iq_size, optimize=optimize))
            for benchmark in self.benchmarks
            for iq_size in self.iq_sizes
        ]

    def _metric_table(self, metric: str,
                      optimize: bool = False) -> Dict[str, Dict[int, float]]:
        table: Dict[str, Dict[int, float]] = {}
        for cell in self.sweep(optimize=optimize):
            table.setdefault(cell.benchmark, {})[cell.iq_size] = \
                cell.summary[metric]
        table["average"] = {
            iq: sum(table[b][iq] for b in self.benchmarks)
            / len(self.benchmarks)
            for iq in self.iq_sizes
        }
        return table

    def figure5_gating(self) -> Dict[str, Dict[int, float]]:
        """Figure 5: fraction of cycles with the front-end gated."""
        return self._metric_table("gated_fraction")

    def figure6_component_power(self) -> Dict[str, Dict[int, float]]:
        """Figure 6: average power reduction per component vs IQ size.

        Rows: icache / bpred / issue_queue / overhead; columns: IQ sizes.
        """
        rows = {"icache": "icache_power_reduction",
                "bpred": "bpred_power_reduction",
                "issue_queue": "iq_power_reduction",
                "overhead": "overhead_fraction"}
        cells = self.sweep()
        table: Dict[str, Dict[int, float]] = {}
        for row_name, metric in rows.items():
            table[row_name] = {}
            for iq in self.iq_sizes:
                values = [c.summary[metric] for c in cells
                          if c.iq_size == iq]
                table[row_name][iq] = sum(values) / len(values)
        return table

    def figure7_overall_power(self) -> Dict[str, Dict[int, float]]:
        """Figure 7: overall per-cycle power reduction per benchmark."""
        return self._metric_table("overall_power_reduction")

    def figure8_performance(self) -> Dict[str, Dict[int, float]]:
        """Figure 8: IPC degradation per benchmark."""
        return self._metric_table("ipc_degradation")

    # -- Figure 9 (Section 4) ---------------------------------------------------

    def figure9_compiler_optimization(
            self, iq_size: int = 64) -> Dict[str, Dict[str, float]]:
        """Figure 9: overall power reduction, original vs optimized code.

        Also reports the gated fractions and IPC degradation behind the
        text's 48 % -> 86 % and 1 % -> 2 % claims.
        """
        self.prefetch([
            spec
            for benchmark in self.benchmarks
            for optimize in (False, True)
            for spec in self._pair_specs(benchmark, iq_size,
                                         optimize=optimize)
        ])
        table: Dict[str, Dict[str, float]] = {}
        for benchmark in self.benchmarks:
            original = self.compare(benchmark, iq_size, optimize=False)
            optimized = self.compare(benchmark, iq_size, optimize=True)
            table[benchmark] = {
                "original": original.overall_power_reduction,
                "optimized": optimized.overall_power_reduction,
                "original_gated": original.gated_fraction,
                "optimized_gated": optimized.gated_fraction,
                "original_ipc_degradation": original.ipc_degradation,
                "optimized_ipc_degradation": optimized.ipc_degradation,
            }
        table["average"] = {
            key: sum(table[b][key] for b in self.benchmarks)
            / len(self.benchmarks)
            for key in next(iter(table.values()))
        }
        return table

    # -- ablations ---------------------------------------------------------------

    def nblt_ablation(self, iq_size: int = 64,
                      benchmarks: Optional[Iterable[str]] = None
                      ) -> Dict[str, Dict[str, float]]:
        """Buffering revoke rate with and without the NBLT (Section 3)."""
        names = tuple(benchmarks) if benchmarks else self.benchmarks
        self.prefetch([
            spec
            for benchmark in names
            for nblt_size in (8, 0)
            for spec in self._pair_specs(benchmark, iq_size,
                                         nblt_size=nblt_size)
        ])
        table: Dict[str, Dict[str, float]] = {}
        for benchmark in names:
            with_nblt = self.compare(benchmark, iq_size, nblt_size=8)
            without = self.compare(benchmark, iq_size, nblt_size=0)
            table[benchmark] = {
                "revoke_rate_with_nblt":
                    with_nblt.reuse.stats.revoke_rate,
                "revoke_rate_without_nblt":
                    without.reuse.stats.revoke_rate,
                "gated_with_nblt": with_nblt.gated_fraction,
                "gated_without_nblt": without.gated_fraction,
            }
        return table

    def strategy_ablation(self, iq_size: int = 64,
                          benchmarks: Optional[Iterable[str]] = None
                          ) -> Dict[str, Dict[str, float]]:
        """Single- vs multi-iteration buffering (Section 2.2.1)."""
        names = tuple(benchmarks) if benchmarks else self.benchmarks
        self.prefetch([
            spec
            for benchmark in names
            for strategy in ("multi", "single")
            for spec in self._pair_specs(benchmark, iq_size,
                                         strategy=strategy)
        ])
        table: Dict[str, Dict[str, float]] = {}
        for benchmark in names:
            multi = self.compare(benchmark, iq_size, strategy="multi")
            single = self.compare(benchmark, iq_size, strategy="single")
            table[benchmark] = {
                "gated_multi": multi.gated_fraction,
                "gated_single": single.gated_fraction,
                "ipc_degradation_multi": multi.ipc_degradation,
                "ipc_degradation_single": single.ipc_degradation,
            }
        return table
