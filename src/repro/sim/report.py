"""Plain-text rendering of experiment tables.

Used by the ``benchmarks/`` harness to print each figure's data in the same
rows/series the paper plots, and by ``examples/reproduce_paper.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence


def format_percent_table(title: str,
                         table: Dict[str, Dict],
                         columns: Sequence,
                         row_order: Optional[Iterable[str]] = None,
                         column_header: str = "") -> str:
    """Render a nested dict as an aligned percentage table.

    ``table[row][column]`` holds fractions; rendered as percentages with
    one decimal.  Rows appear in ``row_order`` (default: insertion order).
    """
    rows = list(row_order) if row_order is not None else list(table)
    name_width = max(len(str(r)) for r in rows + [column_header])
    col_width = max(8, *(len(str(c)) for c in columns))
    lines = [title]
    header = f"{column_header:<{name_width}}" + "".join(
        f"{str(c):>{col_width + 2}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = "".join(
            f"{table[row][col] * 100:>{col_width + 1}.1f}%"
            for col in columns)
        lines.append(f"{str(row):<{name_width}}" + cells)
    return "\n".join(lines)


def format_comparison_rows(title: str,
                           table: Dict[str, Dict[str, float]],
                           keys: Sequence[str],
                           headers: Optional[Sequence[str]] = None) -> str:
    """Render per-benchmark dicts with chosen metric keys as columns."""
    names = list(table)
    headers = list(headers) if headers else list(keys)
    name_width = max(len(n) for n in names)
    widths = [max(10, len(h)) for h in headers]
    lines = [title]
    header = f"{'':<{name_width}}" + "".join(
        f"{h:>{w + 2}}" for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for name in names:
        cells = "".join(
            f"{table[name][k] * 100:>{w + 1}.1f}%"
            for k, w in zip(keys, widths))
        lines.append(f"{name:<{name_width}}" + cells)
    return "\n".join(lines)
