"""Simulation driver and experiment harness.

* :mod:`repro.sim.simulator` -- run one program on one configuration and
  collect timing + power into a :class:`SimulationResult`,
* :mod:`repro.sim.results` -- result records and baseline-vs-reuse
  comparisons,
* :mod:`repro.sim.experiments` -- the parameter sweeps behind every table
  and figure in the paper's evaluation,
* :mod:`repro.sim.report` -- plain-text table rendering used by the
  benchmark harness and EXPERIMENTS.md.
"""

from repro.sim.results import RunComparison, SimulationResult
from repro.sim.simulator import evaluate_power, run_timing, simulate

__all__ = ["RunComparison", "SimulationResult", "evaluate_power",
           "run_timing", "simulate"]
