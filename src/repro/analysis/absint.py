"""Abstract interpretation over the interprocedural supergraph.

Four cooperating analyses, all purely static and all built on the
:class:`~repro.analysis.cfg.ControlFlowGraph`:

* :class:`IntervalAnalysis` -- a classic value-range (interval) domain
  over the integer register file, computed to fixpoint with widening.
  This generalizes the sparse constant lattice of
  :func:`~repro.analysis.dataflow.resolve_static_stores`: a register can
  now be known to lie *within a range* (e.g. a loop counter) instead of
  being either one constant or nothing.
* :func:`infer_trip_counts` -- loop trip-count inference.  For every
  backward-branch candidate it pattern-matches the loop-ending test (a
  counted induction register compared against a bound) and combines it
  with the interval state at loop entry, yielding an exact count for
  constant counters and a ``[min, max]`` band for range-bounded ones.
* :func:`memory_refs` / :func:`may_alias` -- a conservative memory
  region and alias pass: every load/store gets an address interval from
  the interval state at its program point, classified into the text,
  data and stack segments.  Two references may alias unless their byte
  ranges provably miss each other.
* :func:`find_ineffectual` -- static ineffectuality: no-op moves,
  discarded results, dead writes (backward liveness) and block-local
  silent stores.  These are exactly the architecturally wasted slots
  that a buffered loop body keeps replaying every iteration.

Together these are the substrate of the static reuse-benefit predictor
(:mod:`repro.analysis.predict`) and of lint rules B007-B010.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.cfg import (EDGE_TAKEN, BasicBlock, ControlFlowGraph)
from repro.analysis.loops import StaticLoop
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode
from repro.isa.program import DATA_BASE, STACK_TOP, TEXT_BASE, Program
from repro.isa.registers import NUM_LOGICAL_REGS, REG_SP, REG_ZERO
from repro.isa.semantics import sign_extend_16, to_s32, zero_extend_16

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1

#: Fixpoint visits of one block before joins start widening.
WIDEN_AFTER = 8


# -- the interval domain ------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed signed 32-bit range ``[lo, hi]``."""

    lo: int
    hi: int

    @staticmethod
    def const(value: int) -> "Interval":
        """The singleton interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        """The full signed 32-bit range (no information)."""
        return TOP

    @property
    def is_const(self) -> bool:
        """True when the range is a single value."""
        return self.lo == self.hi

    @property
    def is_top(self) -> bool:
        """True when the range carries no information."""
        return self.lo <= INT_MIN and self.hi >= INT_MAX

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (interval hull)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Standard widening: jump any unstable bound to the extreme."""
        lo = self.lo if other.lo >= self.lo else INT_MIN
        hi = self.hi if other.hi <= self.hi else INT_MAX
        return Interval(lo, hi)

    def __repr__(self) -> str:
        if self.is_const:
            return f"[{self.lo}]"
        return f"[{self.lo}, {self.hi}]"


TOP = Interval(INT_MIN, INT_MAX)

#: Abstract register state: missing key means TOP (unknown).
AbstractState = Dict[int, Interval]


def _clamped(lo: int, hi: int) -> Interval:
    """An interval, degraded to TOP when it escapes signed 32-bit range.

    Escaping the representable range means the concrete machine would
    wrap; rather than model modular intervals we drop to TOP, which is
    sound and keeps every downstream consumer simple.
    """
    if lo < INT_MIN or hi > INT_MAX:
        return TOP
    return Interval(lo, hi)


def _read(state: AbstractState, reg: Optional[int]) -> Interval:
    if reg is None:
        return TOP
    if reg == REG_ZERO:
        return Interval(0, 0)
    return state.get(reg, TOP)


def _write(state: AbstractState, dest: Optional[int],
           value: Interval) -> None:
    if dest is None:
        return
    if value.is_top:
        state.pop(dest, None)
    else:
        state[dest] = value


def _eval(state: AbstractState, inst: Instruction) -> Interval:
    """Abstract value produced by one register-writing instruction."""
    op = inst.op
    if op is Opcode.LUI:
        return Interval.const(to_s32(zero_extend_16(inst.imm) << 16))
    if op is Opcode.ADDIU:
        src = _read(state, inst.rs)
        imm = sign_extend_16(inst.imm)
        return _clamped(src.lo + imm, src.hi + imm)
    if op is Opcode.ADDU:
        a, b = _read(state, inst.rs), _read(state, inst.rt)
        return _clamped(a.lo + b.lo, a.hi + b.hi)
    if op is Opcode.SUBU:
        a, b = _read(state, inst.rs), _read(state, inst.rt)
        return _clamped(a.lo - b.hi, a.hi - b.lo)
    if op is Opcode.ORI:
        src = _read(state, inst.rs)
        imm = zero_extend_16(inst.imm)
        if src.is_const and src.lo >= 0:
            return Interval.const(src.lo | imm)
        return TOP
    if op is Opcode.OR:
        a, b = _read(state, inst.rs), _read(state, inst.rt)
        if a.is_const and b.is_const and a.lo >= 0 and b.lo >= 0:
            return Interval.const(a.lo | b.lo)
        return TOP
    if op in (Opcode.SLT, Opcode.SLTU, Opcode.SLT_D, Opcode.SLE_D,
              Opcode.SEQ_D):
        return Interval(0, 1)
    if op is Opcode.SLTI:
        src = _read(state, inst.rs)
        bound = sign_extend_16(inst.imm)
        if src.hi < bound:
            return Interval.const(1)
        if src.lo >= bound:
            return Interval.const(0)
        return Interval(0, 1)
    if op is Opcode.SLTIU:
        return Interval(0, 1)
    if op is Opcode.ANDI:
        imm = zero_extend_16(inst.imm)
        src = _read(state, inst.rs)
        if src.is_const and src.lo >= 0:
            return Interval.const(src.lo & imm)
        return Interval(0, imm)
    if op is Opcode.AND:
        a, b = _read(state, inst.rs), _read(state, inst.rt)
        if a.is_const and b.is_const and a.lo >= 0 and b.lo >= 0:
            return Interval.const(a.lo & b.lo)
        return TOP
    if op is Opcode.SLL:
        src = _read(state, inst.rt)
        shift = inst.imm & 31
        if src.lo >= 0:
            return _clamped(src.lo << shift, src.hi << shift)
        return TOP
    if op in (Opcode.SRL, Opcode.SRA):
        src = _read(state, inst.rt)
        shift = inst.imm & 31
        if src.lo >= 0:
            return Interval(src.lo >> shift, src.hi >> shift)
        return TOP
    if op is Opcode.MULT:
        a, b = _read(state, inst.rs), _read(state, inst.rt)
        if a.is_const and b.is_const:
            return _clamped(a.lo * b.lo, a.lo * b.lo)
        if a.lo >= 0 and b.lo >= 0 and not a.is_top and not b.is_top:
            return _clamped(a.lo * b.lo, a.hi * b.hi)
        return TOP
    if op is Opcode.JAL or op is Opcode.JALR:
        if inst.pc is not None:
            return Interval.const(inst.pc + 4)
        return TOP
    # Loads, divisions, floating point and anything unmodelled.
    return TOP


def transfer(state: AbstractState, inst: Instruction) -> None:
    """Apply one instruction to an abstract state, in place."""
    if inst.is_call and inst.is_indirect_control:
        state.clear()                   # unknown callee clobbers everything
        return
    if inst.dest is None:
        return
    _write(state, inst.dest, _eval(state, inst))


def join_states(left: AbstractState, right: AbstractState,
                widen: bool = False) -> AbstractState:
    """Pointwise join (or widen) of two abstract states."""
    merged: AbstractState = {}
    for reg, value in left.items():
        other = right.get(reg)
        if other is None:
            continue
        joined = value.widen(other) if widen else value.join(other)
        if not joined.is_top:
            merged[reg] = joined
    return merged


def _intersect(value: Interval, constraint: Interval) -> Optional[Interval]:
    """Meet of two intervals; None when they are disjoint."""
    lo, hi = max(value.lo, constraint.lo), min(value.hi, constraint.hi)
    if lo > hi:
        return None
    return Interval(lo, hi)


def entry_state() -> AbstractState:
    """The architectural reset state: only ``$zero`` and ``$sp`` defined."""
    return {REG_ZERO: Interval(0, 0), REG_SP: Interval.const(STACK_TOP)}


class IntervalAnalysis:
    """Fixpoint value-range analysis over the interprocedural supergraph.

    Call edges flow into the callee and return edges flow back to every
    return site, merging across call sites -- imprecise but sound, and
    exactly the view :func:`~repro.analysis.dataflow.undefined_reads`
    already uses.  States at unreached blocks are reported as empty
    (everything TOP).
    """

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self._in_states: Dict[int, AbstractState] = {}
        self._thresholds = self._collect_thresholds()
        self._run()

    def _collect_thresholds(self) -> List[int]:
        """Widening landmarks: every comparison bound in the program.

        Jumping an unstable bound to the nearest branch-comparison
        constant (instead of straight to infinity) lets a counted loop
        stabilize at its actual bound: the back edge's refinement then
        caps the counter below the threshold and the join stops moving.
        """
        bounds: Set[int] = {0}
        for inst in self.cfg.program.instructions:
            if inst.op in (Opcode.SLTI, Opcode.SLTIU):
                bounds.add(sign_extend_16(inst.imm))
        return sorted(bounds)

    def _widen(self, old: Interval, new: Interval) -> Interval:
        lo, hi = old.lo, old.hi
        if new.lo < lo:
            below = [t for t in self._thresholds if t <= new.lo]
            lo = below[-1] if below else INT_MIN
        if new.hi > hi:
            above = [t for t in self._thresholds if t >= new.hi]
            hi = above[0] if above else INT_MAX
        return Interval(lo, hi)

    def _join(self, known: AbstractState, incoming: AbstractState,
              widen: bool) -> AbstractState:
        merged: AbstractState = {}
        for reg, value in known.items():
            other = incoming.get(reg)
            if other is None:
                continue
            joined = (self._widen(value, value.join(other)) if widen
                      else value.join(other))
            if not joined.is_top:
                merged[reg] = joined
        return merged

    def _run(self) -> None:
        cfg = self.cfg
        entry = cfg.entry_block.index
        self._in_states[entry] = entry_state()
        visits: Dict[int, int] = {}
        worklist: List[int] = [entry]
        while worklist:
            index = worklist.pop()
            visits[index] = visits.get(index, 0) + 1
            block = cfg.blocks[index]
            insts = cfg.instructions(block)
            out = dict(self._in_states[index])
            for inst in insts:
                transfer(out, inst)
            for succ, edge_out in self._edge_states(block, insts, out):
                known = self._in_states.get(succ)
                if known is None:
                    self._in_states[succ] = dict(edge_out)
                    worklist.append(succ)
                    continue
                widen = visits.get(succ, 0) >= WIDEN_AFTER
                merged = self._join(known, edge_out, widen=widen)
                if merged != known:
                    self._in_states[succ] = merged
                    worklist.append(succ)

    def _edge_states(self, block: BasicBlock, insts: List[Instruction],
                     out: AbstractState,
                     ) -> List[Tuple[int, AbstractState]]:
        """Successor in-flows, refined by the branch condition if any."""
        if not insts or not insts[-1].is_conditional_branch:
            return [(succ, out)
                    for succ in self.cfg.supergraph_successors(block)]
        edges: List[Tuple[int, AbstractState]] = []
        for succ, kind in block.successors:
            constraint = _edge_constraint(insts, out,
                                          taken=(kind == EDGE_TAKEN))
            if constraint is None:
                edges.append((succ, out))
                continue
            reg, allowed = constraint
            refined_value = _intersect(_read(out, reg), allowed)
            if refined_value is None:
                # The edge is statically infeasible; propagating the
                # unrefined state keeps the analysis sound and simple.
                edges.append((succ, out))
                continue
            refined = dict(out)
            _write(refined, reg, refined_value)
            edges.append((succ, refined))
        return edges

    # -- queries -------------------------------------------------------------

    def block_entry(self, block_index: int) -> AbstractState:
        """The abstract state on entry to one block."""
        return dict(self._in_states.get(block_index, {}))

    def block_exit(self, block_index: int) -> AbstractState:
        """The abstract state after the last instruction of one block."""
        state = self.block_entry(block_index)
        block = self.cfg.blocks[block_index]
        for inst in self.cfg.instructions(block):
            transfer(state, inst)
        return state

    def state_before(self, pc: int) -> AbstractState:
        """The abstract state just before the instruction at ``pc``."""
        block = self.cfg.block_at_pc(pc)
        if block is None:
            return {}
        state = self.block_entry(block.index)
        for inst in self.cfg.instructions(block):
            if inst.pc == pc:
                break
            transfer(state, inst)
        return state

    def value_of(self, pc: int, reg: int) -> Interval:
        """The interval a register holds just before ``pc``."""
        return _read(self.state_before(pc), reg)


_BR1_TAKEN: Dict[Opcode, Interval] = {
    Opcode.BLEZ: Interval(INT_MIN, 0),
    Opcode.BGTZ: Interval(1, INT_MAX),
    Opcode.BLTZ: Interval(INT_MIN, -1),
    Opcode.BGEZ: Interval(0, INT_MAX),
}
_BR1_FALL: Dict[Opcode, Interval] = {
    Opcode.BLEZ: Interval(1, INT_MAX),
    Opcode.BGTZ: Interval(INT_MIN, 0),
    Opcode.BLTZ: Interval(0, INT_MAX),
    Opcode.BGEZ: Interval(INT_MIN, -1),
}


def _block_compare(insts: List[Instruction],
                   flag: int) -> Optional[Instruction]:
    """The compare producing ``flag`` at the block's terminator.

    The last in-block write of the flag register, provided it is a
    ``slti`` whose compared register is not redefined afterwards -- the
    shape the code generator emits for every counted loop test.
    """
    cmp: Optional[Instruction] = None
    position = -1
    for index, inst in enumerate(insts[:-1]):
        if inst.dest == flag:
            cmp, position = inst, index
    if cmp is None or cmp.op is not Opcode.SLTI:
        return None
    reg = cmp.rs
    if reg is None or reg == REG_ZERO:
        return None
    for inst in insts[position + 1:]:
        if inst.dest == reg:
            return None
    return cmp


def _edge_constraint(insts: List[Instruction], out: AbstractState,
                     taken: bool) -> Optional[Tuple[int, Interval]]:
    """The interval a register is known to lie in along one branch edge."""
    term = insts[-1]
    op = term.op
    if op in _BR1_TAKEN:
        reg = term.rs
        if reg is None or reg == REG_ZERO:
            return None
        return reg, (_BR1_TAKEN if taken else _BR1_FALL)[op]
    if op not in (Opcode.BNE, Opcode.BEQ):
        return None
    rs, rt = term.rs, term.rt
    if rs is None or rt is None:
        return None
    for flag, other in ((rs, rt), (rt, rs)):
        if other != REG_ZERO or flag == REG_ZERO:
            continue
        nonzero = (op is Opcode.BNE) == taken
        cmp = _block_compare(insts, flag)
        if cmp is not None and cmp.rs is not None:
            bound = sign_extend_16(cmp.imm)
            if nonzero:                 # flag set: reg < bound held
                return cmp.rs, Interval(INT_MIN, bound - 1)
            return cmp.rs, Interval(bound, INT_MAX)
        if not nonzero:
            return flag, Interval(0, 0)
        # flag != 0: an interval can only express that by trimming an
        # endpoint that sits exactly at zero.
        value = _read(out, flag)
        if value.lo == 0 and value.hi > 0:
            return flag, Interval(1, value.hi)
        if value.hi == 0 and value.lo < 0:
            return flag, Interval(value.lo, -1)
        return None
    return None


# -- trip-count inference -----------------------------------------------------


@dataclass(frozen=True)
class TripCount:
    """Static trip-count verdict for one loop candidate.

    ``min_trips``/``max_trips`` bound the number of body executions per
    entry into the loop; both ``None`` means the pattern matcher could
    not establish a bound (an unknown or potentially unbounded loop).
    """

    #: Tail pc of the loop this verdict describes.
    tail_pc: int
    #: Counted induction register, when one was identified.
    induction_reg: Optional[int]
    #: Per-iteration increment of the induction register.
    step: Optional[int]
    #: Lower bound on body executions per loop entry (None = unknown).
    min_trips: Optional[int]
    #: Upper bound on body executions per loop entry (None = unknown).
    max_trips: Optional[int]
    #: How the bound was derived: ``constant-counter``,
    #: ``range-counter`` or ``unknown``.
    kind: str

    @property
    def exact(self) -> Optional[int]:
        """The exact trip count when the bounds coincide."""
        if self.min_trips is not None and self.min_trips == self.max_trips:
            return self.min_trips
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (stable keys, hex tail address)."""
        return {
            "tail_pc": f"{self.tail_pc:#x}",
            "induction_reg": self.induction_reg,
            "step": self.step,
            "min_trips": self.min_trips,
            "max_trips": self.max_trips,
            "kind": self.kind,
        }


def _unknown(tail_pc: int) -> TripCount:
    return TripCount(tail_pc=tail_pc, induction_reg=None, step=None,
                     min_trips=None, max_trips=None, kind="unknown")


def _range_instructions(program: Program,
                        loop: StaticLoop) -> List[Instruction]:
    """Instructions in the contiguous ``head..tail`` pc range."""
    lo = program.index_of(loop.head_pc)
    hi = program.index_of(loop.tail_pc)
    if lo is None or hi is None:
        return []
    return program.instructions[lo:hi + 1]


def _callee_writes(cfg: ControlFlowGraph, loop: StaticLoop) -> Set[int]:
    """Registers any callee reachable from the loop body may write."""
    written: Set[int] = set()
    seen: Set[int] = set()
    worklist: List[int] = []
    program = cfg.program
    for pc in loop.call_sites:
        index = program.index_of(pc)
        if index is None:
            continue
        inst = program.instructions[index]
        if inst.target is not None:
            worklist.append(inst.target)
        else:
            return set(range(NUM_LOGICAL_REGS))   # indirect: assume all
    while worklist:
        entry_pc = worklist.pop()
        if entry_pc in seen:
            continue
        seen.add(entry_pc)
        proc = cfg.procedures.get(entry_pc)
        if proc is None:
            return set(range(NUM_LOGICAL_REGS))
        for block_index in proc.blocks:
            for inst in cfg.instructions(cfg.blocks[block_index]):
                if inst.dest is not None:
                    written.add(inst.dest)
        for site in proc.call_sites:
            if site.target is None:
                return set(range(NUM_LOGICAL_REGS))
            worklist.append(site.target)
    return written


def _loop_entry_state(cfg: ControlFlowGraph, loop: StaticLoop,
                      analysis: IntervalAnalysis) -> AbstractState:
    """Join of the states flowing into the head from outside the loop."""
    head = cfg.block_at_pc(loop.head_pc)
    if head is None:
        return {}
    state: Optional[AbstractState] = None
    for pred in head.predecessors:
        pred_block = cfg.blocks[pred]
        terminator_pc = cfg.terminator(pred_block).pc
        if (terminator_pc is not None
                and loop.head_pc <= terminator_pc <= loop.tail_pc):
            continue                    # back edge or in-loop branch
        out = analysis.block_exit(pred)
        state = out if state is None else join_states(state, out)
    return state if state is not None else {}


def _branch_predicate(tail: Instruction, tail_block: List[Instruction],
                      range_insts: List[Instruction],
                      induction: Dict[int, Instruction],
                      entry: AbstractState,
                      written_in_range: Set[int],
                      ) -> Optional[Tuple[int, str, Interval, int]]:
    """Decode the loop-ending test into ``(reg, relation, bound, cmp_pc)``.

    The relation describes the *continue* condition: the loop re-enters
    while ``reg <relation> bound`` holds, evaluated on the value the
    comparison observes at ``cmp_pc``.  Returns None when the tail does
    not match a supported counted-loop shape.
    """
    op = tail.op
    tail_pc = tail.pc if tail.pc is not None else 0
    if op in (Opcode.BLEZ, Opcode.BGTZ, Opcode.BLTZ, Opcode.BGEZ):
        reg = tail.rs
        if reg is None or reg not in induction:
            return None
        relation = {Opcode.BLEZ: "<=", Opcode.BGTZ: ">",
                    Opcode.BLTZ: "<", Opcode.BGEZ: ">="}[op]
        return reg, relation, Interval.const(0), tail_pc
    if op not in (Opcode.BNE, Opcode.BEQ):
        return None
    rs, rt = tail.rs, tail.rt
    if rs is None or rt is None:
        return None
    # Form 1: the codegen idiom -- bne/beq of a comparison flag vs $zero,
    # the flag set by a compare over the induction register in the tail's
    # own block (nested loops share flag registers across the range, so
    # only the tail block's defining compare is authoritative).
    for flag, other in ((rs, rt), (rt, rs)):
        if other != REG_ZERO or flag == REG_ZERO:
            continue
        cmp = _tail_compare(tail_block, flag, induction, written_in_range,
                            entry)
        if cmp is None:
            continue
        reg, bound, cmp_pc = cmp
        # bne flag, $zero: continue while (reg < bound); beq inverts.
        relation = "<" if op is Opcode.BNE else ">="
        return reg, relation, bound, cmp_pc
    # Form 2: direct compare of the induction register against an
    # invariant register (or $zero): bne r, limit / beq r, limit.
    for reg, limit_reg in ((rs, rt), (rt, rs)):
        if reg not in induction:
            continue
        if limit_reg != REG_ZERO and limit_reg in written_in_range:
            continue
        bound = _read(entry, limit_reg) if limit_reg != REG_ZERO \
            else Interval.const(0)
        if bound.is_top:
            continue
        relation = "!=" if op is Opcode.BNE else "=="
        return reg, relation, bound, tail_pc
    return None


def _tail_compare(tail_block: List[Instruction], flag: int,
                  induction: Dict[int, Instruction],
                  written_in_range: Set[int], entry: AbstractState,
                  ) -> Optional[Tuple[int, Interval, int]]:
    """Resolve the flag's defining ``slt``/``slti`` in the tail block."""
    cmp: Optional[Instruction] = None
    position = -1
    for index, inst in enumerate(tail_block[:-1]):
        if inst.dest == flag:
            cmp, position = inst, index
    if cmp is None or cmp.pc is None:
        return None
    reg = cmp.rs
    if reg is None or reg not in induction:
        return None
    for inst in tail_block[position + 1:-1]:
        if inst.dest == reg:
            return None                 # counter moves after the compare
    if cmp.op is Opcode.SLTI:
        return reg, Interval.const(sign_extend_16(cmp.imm)), cmp.pc
    if cmp.op is Opcode.SLT:
        limit_reg = cmp.rt
        if limit_reg is None or limit_reg in written_in_range:
            return None                 # bound is not loop-invariant
        bound = _read(entry, limit_reg)
        if bound.is_top:
            return None
        return reg, bound, cmp.pc
    return None


def _ceil_div(num: int, den: int) -> int:
    return -(-num // den)


def _trips_for(entry_value: int, step: int, relation: str, bound: int,
               observes_increment: bool) -> Optional[int]:
    """Body executions of a do-while counted loop, or None if unbounded.

    The loop body always runs once; at the end of iteration ``j`` the
    test observes ``entry + j*step`` (when the increment precedes the
    comparison) or ``entry + (j-1)*step`` otherwise, and the loop exits
    on the first iteration whose continue-predicate is false.
    """
    shift = 0 if observes_increment else -1

    def observed(j: int) -> int:
        return entry_value + (j + shift) * step

    if relation in ("<", "<="):
        limit = bound if relation == "<" else bound + 1
        if step <= 0:
            return None if observed(1) < limit else 1
        # smallest j >= 1 with observed(j) >= limit
        raw = _ceil_div(limit - entry_value, step) - shift
        return max(1, raw)
    if relation in (">", ">="):
        limit = bound if relation == ">" else bound - 1
        if step >= 0:
            return None if observed(1) > limit else 1
        raw = _ceil_div(limit - entry_value, step) - shift
        return max(1, raw)
    if relation == "!=":
        delta = bound - observed(1)
        if step == 0:
            return 1 if delta == 0 else None
        if delta % step != 0 or delta // step < 0:
            return None
        return delta // step + 1
    # "==": continue only while equal; a moving counter breaks equality
    # by the second test.
    if observed(1) != bound:
        return 1
    return 2 if step != 0 else None


def infer_trip_counts(
        cfg: ControlFlowGraph,
        loops: Iterable[StaticLoop],
        analysis: Optional[IntervalAnalysis] = None,
) -> Dict[int, TripCount]:
    """Trip-count verdicts for every loop candidate, keyed by tail pc.

    Matches the counted-loop shapes the code generator emits (a single
    ``addiu r, r, step`` induction write tested by ``slt``/``slti``
    against an invariant bound, or a direct branch on the counter) and
    evaluates them against the interval state at loop entry.  Loops
    whose tail is an unconditional jump, whose counter the matcher
    cannot identify, or whose bound/entry value is unknown come back as
    ``kind="unknown"`` with open bounds.
    """
    if analysis is None:
        analysis = IntervalAnalysis(cfg)
    program = cfg.program
    verdicts: Dict[int, TripCount] = {}
    for loop in loops:
        tail_index = program.index_of(loop.tail_pc)
        if tail_index is None:
            verdicts[loop.tail_pc] = _unknown(loop.tail_pc)
            continue
        tail = program.instructions[tail_index]
        if not tail.is_conditional_branch:
            # ``j`` back edges never fall out: statically unbounded.
            verdicts[loop.tail_pc] = _unknown(loop.tail_pc)
            continue
        range_insts = _range_instructions(program, loop)
        callee_written = _callee_writes(cfg, loop)
        written_in_range: Set[int] = {
            inst.dest for inst in range_insts if inst.dest is not None}
        written_in_range |= callee_written
        # Counted induction registers: exactly one in-range write, and
        # that write is ``addiu r, r, step`` (callees must not touch r).
        writes: Dict[int, List[Instruction]] = {}
        for inst in range_insts:
            if inst.dest is not None:
                writes.setdefault(inst.dest, []).append(inst)
        induction: Dict[int, Instruction] = {}
        for reg, reg_writes in writes.items():
            if len(reg_writes) != 1 or reg in callee_written:
                continue
            inc = reg_writes[0]
            if (inc.op is Opcode.ADDIU and inc.rs == reg
                    and sign_extend_16(inc.imm) != 0):
                induction[reg] = inc
        entry = _loop_entry_state(cfg, loop, analysis)
        tail_block_owner = cfg.block_at_pc(loop.tail_pc)
        tail_block = (cfg.instructions(tail_block_owner)
                      if tail_block_owner is not None else [tail])
        predicate = _branch_predicate(tail, tail_block, range_insts,
                                      induction, entry, written_in_range)
        if predicate is None:
            verdicts[loop.tail_pc] = _unknown(loop.tail_pc)
            continue
        reg, relation, bound, cmp_pc = predicate
        inc = induction[reg]
        step = sign_extend_16(inc.imm)
        start = _read(entry, reg)
        if start.is_top or bound.is_top:
            verdicts[loop.tail_pc] = TripCount(
                tail_pc=loop.tail_pc, induction_reg=reg, step=step,
                min_trips=None, max_trips=None, kind="unknown")
            continue
        # Which value does the test observe: post- or pre-increment?
        observes_increment = (inc.pc is not None and inc.pc < cmp_pc)
        corners: List[Optional[int]] = []
        for entry_value in (start.lo, start.hi):
            for bound_value in (bound.lo, bound.hi):
                corners.append(_trips_for(entry_value, step, relation,
                                          bound_value, observes_increment))
        if any(corner is None for corner in corners):
            min_trips, max_trips = None, None
            kind = "unknown"
        else:
            counts = [corner for corner in corners if corner is not None]
            min_trips, max_trips = min(counts), max(counts)
            kind = ("constant-counter"
                    if start.is_const and bound.is_const
                    else "range-counter")
        verdicts[loop.tail_pc] = TripCount(
            tail_pc=loop.tail_pc, induction_reg=reg, step=step,
            min_trips=min_trips, max_trips=max_trips, kind=kind)
    return verdicts


# -- memory regions and aliasing ----------------------------------------------

REGION_TEXT = "text"
REGION_DATA = "data"
REGION_STACK = "stack"
REGION_UNKNOWN = "unknown"

#: Bytes accessed per memory opcode.
ACCESS_SIZE: Dict[Opcode, int] = {
    Opcode.LW: 4, Opcode.SW: 4,
    Opcode.LH: 2, Opcode.LHU: 2, Opcode.SH: 2,
    Opcode.LB: 1, Opcode.LBU: 1, Opcode.SB: 1,
    Opcode.L_D: 8, Opcode.S_D: 8,
}

#: The data segment is open-ended upward; everything at or above the
#: initial stack pointer minus this window counts as stack.
STACK_WINDOW = 1 << 20


@dataclass(frozen=True)
class MemoryRef:
    """One load/store with its abstract byte range."""

    #: Byte address of the instruction.
    pc: int
    #: True for stores.
    is_store: bool
    #: Lowest byte the access may touch (None = unknown base).
    lo: Optional[int]
    #: Highest byte the access may touch, inclusive (None = unknown).
    hi: Optional[int]
    #: Segment verdict: text / data / stack / unknown.
    region: str
    #: Access width in bytes.
    width: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary."""
        return {
            "pc": f"{self.pc:#x}",
            "is_store": self.is_store,
            "lo": None if self.lo is None else f"{self.lo:#x}",
            "hi": None if self.hi is None else f"{self.hi:#x}",
            "region": self.region,
            "width": self.width,
        }


def _classify(lo: int, hi: int, text_end: int) -> str:
    if TEXT_BASE <= lo and hi < text_end:
        return REGION_TEXT
    if DATA_BASE <= lo and hi < STACK_TOP - STACK_WINDOW:
        return REGION_DATA
    if STACK_TOP - STACK_WINDOW <= lo and hi <= STACK_TOP + 8:
        return REGION_STACK
    return REGION_UNKNOWN


def memory_refs(cfg: ControlFlowGraph,
                analysis: Optional[IntervalAnalysis] = None,
                ) -> List[MemoryRef]:
    """Every reachable load/store with its address interval and region.

    Sorted by pc.  Unreachable blocks are skipped (rule B004 owns
    those); an access whose base register is unknown gets open bounds
    and the ``unknown`` region.
    """
    if analysis is None:
        analysis = IntervalAnalysis(cfg)
    refs: List[MemoryRef] = []
    text_end = cfg.program.text_end
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        state = analysis.block_entry(block.index)
        for inst in cfg.instructions(block):
            if inst.is_mem and inst.pc is not None:
                width = ACCESS_SIZE.get(inst.op, 4)
                base = _read(state, inst.rs)
                offset = sign_extend_16(inst.imm)
                if base.is_top:
                    refs.append(MemoryRef(pc=inst.pc, is_store=inst.is_store,
                                          lo=None, hi=None,
                                          region=REGION_UNKNOWN, width=width))
                else:
                    lo = base.lo + offset
                    hi = base.hi + offset + width - 1
                    refs.append(MemoryRef(pc=inst.pc, is_store=inst.is_store,
                                          lo=lo, hi=hi,
                                          region=_classify(lo, hi, text_end),
                                          width=width))
            transfer(state, inst)
    refs.sort(key=lambda ref: ref.pc)
    return refs


def may_alias(left: MemoryRef, right: MemoryRef) -> bool:
    """True unless the two byte ranges provably miss each other."""
    if left.lo is None or left.hi is None:
        return True
    if right.lo is None or right.hi is None:
        return True
    return left.lo <= right.hi and right.lo <= left.hi


# -- static ineffectuality ----------------------------------------------------

KIND_NOOP_MOVE = "no-op-move"
KIND_DISCARDED = "discarded-result"
KIND_DEAD_WRITE = "dead-write"
KIND_SILENT_STORE = "silent-store"


@dataclass(frozen=True)
class Ineffectual:
    """One statically wasted instruction."""

    #: Byte address of the instruction.
    pc: int
    #: One of the ``KIND_*`` tags.
    kind: str
    #: Human-readable explanation.
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary."""
        return {"pc": f"{self.pc:#x}", "kind": self.kind,
                "message": self.message}


def _is_noop_move(inst: Instruction) -> bool:
    op = inst.op
    dest = inst.dest
    if dest is None:
        return False
    if op in (Opcode.ADDU, Opcode.OR):
        return ((inst.rs == dest and inst.rt == REG_ZERO)
                or (inst.rt == dest and inst.rs == REG_ZERO))
    if op is Opcode.ADDIU:
        return inst.rs == dest and sign_extend_16(inst.imm) == 0
    if op is Opcode.ORI:
        return inst.rs == dest and zero_extend_16(inst.imm) == 0
    if op in (Opcode.SLL, Opcode.SRL, Opcode.SRA):
        return inst.rt == dest and (inst.imm & 31) == 0
    if op is Opcode.MOV_D:
        return inst.rs == dest
    return False


_ALL_LIVE = frozenset(range(NUM_LOGICAL_REGS))


def _liveness(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Backward may-live fixpoint: block index -> live-out registers.

    Conservative at every boundary the analysis cannot see through:
    returns and halts export everything (the final register file is the
    program's functional output), and calls demand everything (unknown
    callee argument conventions).
    """
    live_out: Dict[int, Set[int]] = {
        block.index: set() for block in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            terminator = cfg.terminator(block)
            if terminator.is_return or terminator.is_halt \
                    or not block.successors:
                out: Set[int] = set(_ALL_LIVE)
            else:
                out = set()
                for succ, _kind in block.successors:
                    out |= _live_in(cfg, cfg.blocks[succ], live_out[succ])
            if out != live_out[block.index]:
                live_out[block.index] = out
                changed = True
    return live_out


def _live_in(cfg: ControlFlowGraph, block: BasicBlock,
             live_out: Set[int]) -> Set[int]:
    live = set(live_out)
    for inst in reversed(cfg.instructions(block)):
        if inst.is_call or (inst.is_indirect_control
                            and not inst.is_return):
            live = set(_ALL_LIVE)
            continue
        if inst.dest is not None:
            live.discard(inst.dest)
        live.update(inst.srcs)
    return live


def _dead_writes(cfg: ControlFlowGraph) -> List[Ineffectual]:
    live_out = _liveness(cfg)
    found: List[Ineffectual] = []
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        live = set(live_out[block.index])
        for inst in reversed(cfg.instructions(block)):
            if inst.is_call or (inst.is_indirect_control
                                and not inst.is_return):
                live = set(_ALL_LIVE)
                continue
            dest = inst.dest
            if dest is not None:
                if dest not in live and inst.pc is not None \
                        and not _is_noop_move(inst):
                    found.append(Ineffectual(
                        pc=inst.pc, kind=KIND_DEAD_WRITE,
                        message=(f"result in r{dest} is overwritten on "
                                 f"every path before any read")))
                live.discard(dest)
            live.update(inst.srcs)
    return found


def _silent_stores(cfg: ControlFlowGraph) -> List[Ineffectual]:
    """Block-local store-back of a value just loaded from the same slot."""
    found: List[Ineffectual] = []
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        # (base reg, offset) -> register currently holding that slot
        loaded: Dict[Tuple[int, int], int] = {}
        for inst in cfg.instructions(block):
            if inst.is_call or inst.is_indirect_control:
                loaded.clear()
                continue
            if inst.is_store and inst.rs is not None \
                    and inst.rt is not None:
                key = (inst.rs, sign_extend_16(inst.imm))
                if loaded.get(key) == inst.rt and inst.pc is not None:
                    found.append(Ineffectual(
                        pc=inst.pc, kind=KIND_SILENT_STORE,
                        message=(f"stores the value just loaded from "
                                 f"{sign_extend_16(inst.imm)}(r{inst.rs}) "
                                 f"back unchanged")))
                # any other slot may alias the stored one (conservative)
                loaded = {k: v for k, v in loaded.items() if k == key}
                loaded[key] = inst.rt
                continue
            if inst.dest is not None:
                loaded = {k: v for k, v in loaded.items()
                          if v != inst.dest and k[0] != inst.dest}
                if inst.is_load and inst.rs is not None:
                    loaded[(inst.rs, sign_extend_16(inst.imm))] = inst.dest
    return found


def find_ineffectual(cfg: ControlFlowGraph) -> List[Ineffectual]:
    """Every statically ineffectual instruction, sorted by pc then kind.

    Four detectors: architectural no-op moves (a register moved onto
    itself), discarded results (a value-producing opcode writing
    ``$zero``), dead writes (backward liveness proves no read can see
    the value) and block-local silent stores.  ``nop`` itself is not
    reported -- it is the assembler's explicit filler.
    """
    found: List[Ineffectual] = []
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        for inst in cfg.instructions(block):
            if inst.pc is None:
                continue
            if _is_noop_move(inst):
                found.append(Ineffectual(
                    pc=inst.pc, kind=KIND_NOOP_MOVE,
                    message=f"{inst.op.mnemonic} moves a register onto "
                            f"itself"))
            elif (inst.dest is None and not inst.is_control
                  and not inst.is_store and not inst.is_halt
                  and inst.op is not Opcode.NOP
                  and inst.op.fmt in (Format.R3, Format.R2I, Format.SHIFT,
                                      Format.LUI, Format.LOAD,
                                      Format.FCMP)):
                found.append(Ineffectual(
                    pc=inst.pc, kind=KIND_DISCARDED,
                    message=f"{inst.op.mnemonic} writes $zero; the result "
                            f"is discarded"))
    found.extend(_dead_writes(cfg))
    found.extend(_silent_stores(cfg))
    found.sort(key=lambda item: (item.pc, item.kind))
    return found
