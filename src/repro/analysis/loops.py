"""Static loop detection and structure analysis.

The dynamic loop detector (:mod:`repro.core.loop_detector`) fires on any
predicted-taken backward direct branch or jump whose static distance fits
the issue queue.  This module enumerates exactly the same *candidates*
statically -- every direct conditional branch or unconditional jump whose
target lies at or before its own address (direct calls excluded, as in
the detector) -- and attaches the structure the paper's mechanism cares
about:

* the static distance (``head..tail`` inclusive, the detector's size),
* the dominator-based *natural loop* for the back edge, when the CFG is
  reducible at that edge (body blocks and body length),
* nesting depth by interval containment (matching the contiguous-range
  view the hardware has of a loop),
* call structure: in-range call sites, the maximum static call depth and
  minimum/maximum *dynamic iteration length* with callees inlined (the
  quantity that must fit the free issue-queue entries, Section 2.2.2),
* abort hazards: the statically visible reasons buffering could be
  revoked (loop exit, inner loop, issue-queue overflow) -- the same
  causes the controller registers in the NBLT (Section 2.2.3).

:func:`analyze_loops` is the entry point; the crosscheck and the B001,
B002 and B003 lint rules consume its :class:`StaticLoop` records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import (
    EDGE_CALL_RETURN,
    ControlFlowGraph,
    Procedure,
    START_ROUTINE,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass
from repro.isa.program import INSTRUCTION_BYTES

#: Hazard tags (the statically visible NBLT-registered revoke causes).
HAZARD_EXIT = "exit"
HAZARD_INNER_LOOP = "inner-loop"
HAZARD_IQ_OVERFLOW = "iq-overflow"

#: Bufferability classes returned by :meth:`StaticLoop.classify`.
CLASS_BUFFERABLE = "bufferable"
CLASS_CONDITIONAL = "conditional"
CLASS_OVERFLOW = "overflow"
CLASS_TOO_LARGE = "too-large"


def is_loop_candidate(inst: Instruction) -> bool:
    """True for the static form of the detector's loop-ending test.

    A direct conditional branch or unconditional jump whose resolved
    target is at or before its own address; direct calls are excluded
    (backward calls are procedure linkage, not loop ends).
    """
    icls = inst.op.icls
    if icls is not InstrClass.BRANCH and icls is not InstrClass.JUMP:
        return False
    return (inst.target is not None and inst.pc is not None
            and inst.target <= inst.pc)


@dataclass(frozen=True)
class StaticLoop:
    """One backward-branch loop candidate with its static structure."""

    #: Address of the loop-ending branch/jump (the detector's trigger).
    tail_pc: int
    #: Address of the first instruction of an iteration (the target).
    head_pc: int
    #: Static distance head..tail inclusive, in instructions.
    size: int
    #: True when the tail is a conditional branch (the loop can fall out).
    tail_conditional: bool
    #: Name of the routine owning the tail block.
    routine: str
    #: True when the back edge's target dominates its source (reducible).
    natural: bool
    #: Natural-loop body block indices (empty when not natural).
    body_blocks: Tuple[int, ...]
    #: Instructions across the natural body (falls back to ``size``).
    body_length: int
    #: Nesting depth by pc-interval containment (1 = outermost).
    depth: int
    #: Enclosing candidate's tail pc, or None when outermost.
    parent_tail_pc: Optional[int]
    #: Direct/indirect call instructions inside the pc range.
    call_sites: Tuple[int, ...]
    #: Deepest static call chain from the loop body (0 = no calls,
    #: None = unbounded or unknown -- recursion or an indirect call).
    max_call_depth: Optional[int]
    #: Shortest decode path head->tail with callees inlined (None when
    #: no bound is computable).  A value above the IQ size proves the
    #: loop can never finish buffering an iteration.
    min_iteration_length: Optional[int]
    #: Full footprint: every in-range instruction plus every reachable
    #: callee instruction (None = unbounded).  Above the IQ size means
    #: overflow is *possible*.
    max_iteration_length: Optional[int]
    #: Tail pcs of other loop candidates inside the range or its callees.
    inner_tail_pcs: Tuple[int, ...]
    #: A non-tail in-range branch/jump targets outside the range.
    has_side_exit: bool
    #: The range contains a return instruction.
    has_return_inside: bool
    #: The range contains a non-return indirect jump.
    has_indirect_inside: bool

    def fits(self, iq_size: int) -> bool:
        """True when the static distance fits an ``iq_size``-entry queue."""
        return self.size <= iq_size

    def hazards(self, iq_size: int) -> FrozenSet[str]:
        """Statically visible buffering-abort causes at this queue size.

        These are exactly the revoke causes the controller registers in
        the non-bufferable loop table: execution leaving the loop during
        buffering, an inner loop being detected, and the issue queue
        filling before the loop-ending instruction is met.
        """
        tags: Set[str] = set()
        unknown_calls = bool(self.call_sites) and self.max_call_depth is None
        # A call inside the loop counts as an exit hazard: a mispredicted
        # return can strand the predicted decode stream outside the loop
        # while the call-depth counter is back at zero.
        if (self.tail_conditional or self.has_side_exit
                or self.has_return_inside or self.has_indirect_inside
                or self.call_sites):
            tags.add(HAZARD_EXIT)
        if self.inner_tail_pcs or unknown_calls:
            tags.add(HAZARD_INNER_LOOP)
        # Overflow is possible when the longest iteration exceeds the
        # queue, and also whenever the iteration length *varies*: the
        # multi-iteration strategy only guarantees room for another
        # iteration of the size just observed.
        if (self.max_iteration_length is None
                or self.max_iteration_length > iq_size
                or self.min_iteration_length is None
                or self.min_iteration_length != self.max_iteration_length):
            tags.add(HAZARD_IQ_OVERFLOW)
        return frozenset(tags)

    def classify(self, iq_size: int) -> str:
        """Bufferability verdict at one issue-queue size.

        ``too-large``
            the distance exceeds the queue; the detector never fires.
        ``overflow``
            even the shortest possible iteration (callees inlined)
            exceeds the queue; buffering always aborts.
        ``conditional``
            capturable, but an inner loop or possible callee overflow
            can revoke buffering depending on dynamic behaviour.
        ``bufferable``
            capturable with no statically visible structural hazard.
        """
        if not self.fits(iq_size):
            return CLASS_TOO_LARGE
        if (self.min_iteration_length is not None
                and self.min_iteration_length > iq_size):
            return CLASS_OVERFLOW
        hazards = self.hazards(iq_size)
        if HAZARD_INNER_LOOP in hazards or HAZARD_IQ_OVERFLOW in hazards:
            return CLASS_CONDITIONAL
        return CLASS_BUFFERABLE

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (stable keys, hex addresses)."""
        return {
            "tail_pc": f"{self.tail_pc:#x}",
            "head_pc": f"{self.head_pc:#x}",
            "size": self.size,
            "tail_conditional": self.tail_conditional,
            "routine": self.routine,
            "natural": self.natural,
            "body_length": self.body_length,
            "depth": self.depth,
            "parent_tail_pc": (None if self.parent_tail_pc is None
                               else f"{self.parent_tail_pc:#x}"),
            "call_sites": [f"{pc:#x}" for pc in self.call_sites],
            "max_call_depth": self.max_call_depth,
            "min_iteration_length": self.min_iteration_length,
            "max_iteration_length": self.max_iteration_length,
            "inner_tail_pcs": [f"{pc:#x}" for pc in self.inner_tail_pcs],
            "has_side_exit": self.has_side_exit,
            "has_return_inside": self.has_return_inside,
            "has_indirect_inside": self.has_indirect_inside,
        }


# -- dominators ---------------------------------------------------------------


def compute_dominators(cfg: ControlFlowGraph,
                       proc: Procedure) -> Dict[int, Set[int]]:
    """Dominator sets for one routine's blocks (iterative dataflow)."""
    members = set(proc.blocks)
    entry_index = cfg.program.index_of(proc.entry_pc)
    assert entry_index is not None
    entry = cfg.block_at_index(entry_index).index
    dominators: Dict[int, Set[int]] = {
        index: ({entry} if index == entry else set(members))
        for index in members
    }
    changed = True
    while changed:
        changed = False
        for index in proc.blocks:
            if index == entry:
                continue
            preds = [p for p in cfg.blocks[index].predecessors
                     if p in members]
            if preds:
                new: Set[int] = set.intersection(
                    *(dominators[p] for p in preds))
            else:
                new = set()
            new.add(index)
            if new != dominators[index]:
                dominators[index] = new
                changed = True
    return dominators


def natural_loop_body(cfg: ControlFlowGraph, head_block: int,
                      tail_block: int, members: Set[int]) -> Set[int]:
    """Blocks of the natural loop for the back edge tail->head."""
    body = {head_block, tail_block}
    worklist = [tail_block]
    while worklist:
        index = worklist.pop()
        if index == head_block:
            continue
        for pred in cfg.blocks[index].predecessors:
            if pred in members and pred not in body:
                body.add(pred)
                worklist.append(pred)
    return body


# -- callee footprints --------------------------------------------------------


class _CalleeMetrics:
    """Memoized per-procedure inline footprints and call depths."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._min: Dict[int, float] = {}
        self._max: Dict[int, float] = {}
        self._depth: Dict[int, Optional[float]] = {}

    def min_inline(self, entry_pc: int) -> float:
        """Shortest entry-to-return decode path, callees inlined."""
        if entry_pc in self._min:
            return self._min[entry_pc]
        self._min[entry_pc] = math.inf        # cycle guard
        proc = self.cfg.procedures.get(entry_pc)
        if proc is None:
            return math.inf
        self._min[entry_pc] = self._shortest_path(
            proc, self._entry_block(proc), set(proc.return_blocks))
        return self._min[entry_pc]

    def max_inline(self, entry_pc: int) -> float:
        """Every body instruction plus every reachable callee's."""
        if entry_pc in self._max:
            return self._max[entry_pc]
        self._max[entry_pc] = math.inf        # cycle guard
        proc = self.cfg.procedures.get(entry_pc)
        if proc is None:
            return math.inf
        total = float(proc.instruction_count)
        for site in proc.call_sites:
            if site.target is None:
                total = math.inf
                break
            total += self.max_inline(site.target)
        self._max[entry_pc] = total
        return total

    def depth(self, entry_pc: int) -> Optional[float]:
        """Deepest call chain from one procedure (1 = leaf)."""
        if entry_pc in self._depth:
            return self._depth[entry_pc]
        self._depth[entry_pc] = None          # cycle guard -> unbounded
        proc = self.cfg.procedures.get(entry_pc)
        if proc is None:
            return None
        deepest = 0.0
        for site in proc.call_sites:
            if site.target is None:
                self._depth[entry_pc] = None
                return None
            below = self.depth(site.target)
            if below is None:
                self._depth[entry_pc] = None
                return None
            deepest = max(deepest, below)
        self._depth[entry_pc] = 1.0 + deepest
        return self._depth[entry_pc]

    def _entry_block(self, proc: Procedure) -> int:
        index = self.cfg.program.index_of(proc.entry_pc)
        assert index is not None
        return self.cfg.block_at_index(index).index

    def _shortest_path(self, proc: Procedure, start: int,
                       goals: Set[int]) -> float:
        """Dijkstra over blocks; entering a block costs its length and
        crossing a call-return edge additionally inlines the callee."""
        if not goals:
            return math.inf
        members = set(proc.blocks)
        dist: Dict[int, float] = {start: float(len(self.cfg.blocks[start]))}
        frontier = {start}
        while frontier:
            current = min(frontier, key=lambda b: dist[b])
            frontier.discard(current)
            block = self.cfg.blocks[current]
            for succ, kind in block.successors:
                if succ not in members:
                    continue
                weight = float(len(self.cfg.blocks[succ]))
                if kind == EDGE_CALL_RETURN:
                    term = self.cfg.terminator(block)
                    weight += (self.min_inline(term.target)
                               if term.target is not None else math.inf)
                candidate = dist[current] + weight
                if candidate < dist.get(succ, math.inf):
                    dist[succ] = candidate
                    frontier.add(succ)
        return min((dist.get(goal, math.inf) for goal in goals),
                   default=math.inf)

    def shortest_iteration(self, proc: Procedure, head_block: int,
                           tail_block: int) -> float:
        """Shortest decode path head..tail inside one routine."""
        return self._shortest_path(proc, head_block, {tail_block})


# -- the analysis -------------------------------------------------------------


def _owning_procedure(cfg: ControlFlowGraph,
                      block_index: int) -> Optional[Procedure]:
    start = cfg.procedures.get(cfg.program.entry_point)
    if start is not None and block_index in start.blocks:
        return start
    for entry_pc in sorted(cfg.procedures):
        proc = cfg.procedures[entry_pc]
        if proc.name != START_ROUTINE and block_index in proc.blocks:
            return proc
    return None


def _callee_pc_ranges(cfg: ControlFlowGraph, metrics: _CalleeMetrics,
                      call_targets: List[int]) -> Set[int]:
    """All instruction pcs of procedures reachable from the call targets."""
    pcs: Set[int] = set()
    seen: Set[int] = set()
    worklist = list(call_targets)
    while worklist:
        entry_pc = worklist.pop()
        if entry_pc in seen:
            continue
        seen.add(entry_pc)
        proc = cfg.procedures.get(entry_pc)
        if proc is None:
            continue
        for block_index in proc.blocks:
            block = cfg.blocks[block_index]
            for inst in cfg.instructions(block):
                if inst.pc is not None:
                    pcs.add(inst.pc)
        for site in proc.call_sites:
            if site.target is not None and site.target not in seen:
                worklist.append(site.target)
    return pcs


def _as_optional_int(value: float) -> Optional[int]:
    return None if math.isinf(value) else int(value)


def analyze_loops(cfg: ControlFlowGraph) -> List[StaticLoop]:
    """Every backward-branch loop candidate with its static structure.

    Sorted by tail address; nesting depth and parents computed by pc
    interval containment, which is the view the detector's distance
    check and the controller's in-range test share.
    """
    program = cfg.program
    candidates = [inst for inst in program.instructions
                  if is_loop_candidate(inst)]
    metrics = _CalleeMetrics(cfg)
    dominators_cache: Dict[int, Dict[int, Set[int]]] = {}
    intervals = [(inst.target, inst.pc) for inst in candidates]
    loops: List[StaticLoop] = []
    for inst in candidates:
        assert inst.pc is not None and inst.target is not None
        tail_pc, head_pc = inst.pc, inst.target
        size = (tail_pc - head_pc) // INSTRUCTION_BYTES + 1
        tail_block = cfg.block_at_pc(tail_pc)
        head_block = cfg.block_at_pc(head_pc)
        assert tail_block is not None
        proc = _owning_procedure(cfg, tail_block.index)
        routine = proc.name if proc is not None else "<unreachable>"

        natural = False
        body_blocks: Tuple[int, ...] = ()
        body_length = size
        if (proc is not None and head_block is not None
                and head_block.index in proc.blocks):
            if proc.entry_pc not in dominators_cache:
                dominators_cache[proc.entry_pc] = \
                    compute_dominators(cfg, proc)
            dominators = dominators_cache[proc.entry_pc]
            if head_block.index in dominators.get(tail_block.index, set()):
                natural = True
                body = natural_loop_body(cfg, head_block.index,
                                         tail_block.index,
                                         set(proc.blocks))
                body_blocks = tuple(sorted(body))
                body_length = sum(len(cfg.blocks[index])
                                  for index in body_blocks)

        depth = 1
        parent_tail: Optional[int] = None
        parent_span: Optional[int] = None
        for other_head, other_tail in intervals:
            assert other_head is not None and other_tail is not None
            if (other_head, other_tail) == (head_pc, tail_pc):
                continue
            if other_head <= head_pc and tail_pc <= other_tail:
                depth += 1
                span = other_tail - other_head
                if parent_span is None or span < parent_span:
                    parent_span = span
                    parent_tail = other_tail

        in_range = [i for i in program.instructions
                    if i.pc is not None and head_pc <= i.pc <= tail_pc]
        call_sites = tuple(i.pc for i in in_range
                           if i.is_call and i.pc is not None)
        direct_targets = [i.target for i in in_range
                          if i.is_call and not i.is_indirect_control
                          and i.target is not None]
        has_indirect_call = any(i.is_call and i.is_indirect_control
                                for i in in_range)
        has_return = any(i.is_return for i in in_range)
        has_indirect = any(i.is_indirect_control and not i.is_return
                           and not i.is_call for i in in_range)
        side_exit = False
        for i in in_range:
            if i.pc == tail_pc or not i.is_direct_control or i.is_call:
                continue
            if i.target is not None and not (head_pc <= i.target <= tail_pc):
                side_exit = True
                break

        callee_pcs = _callee_pc_ranges(cfg, metrics, direct_targets)
        inner_tails = tuple(sorted(
            i.pc for i in program.instructions
            if is_loop_candidate(i) and i.pc is not None and i.pc != tail_pc
            and (head_pc <= i.pc < tail_pc or i.pc in callee_pcs)))

        depth_below: Optional[float] = 0.0
        if has_indirect_call:
            depth_below = None
        else:
            for target in direct_targets:
                below = metrics.depth(target)
                if below is None:
                    depth_below = None
                    break
                assert depth_below is not None
                depth_below = max(depth_below, below)
        max_call_depth = None if depth_below is None else int(depth_below)

        max_iter: float = float(size)
        if has_indirect_call:
            max_iter = math.inf
        else:
            for target in direct_targets:
                max_iter += metrics.max_inline(target)
        min_iter: float = math.inf
        if (proc is not None and head_block is not None
                and head_block.index in proc.blocks):
            min_iter = metrics.shortest_iteration(proc, head_block.index,
                                                  tail_block.index)
        elif not call_sites:
            min_iter = float(size)

        loops.append(StaticLoop(
            tail_pc=tail_pc,
            head_pc=head_pc,
            size=size,
            tail_conditional=inst.is_conditional_branch,
            routine=routine,
            natural=natural,
            body_blocks=body_blocks,
            body_length=body_length,
            depth=depth,
            parent_tail_pc=parent_tail,
            call_sites=call_sites,
            max_call_depth=max_call_depth,
            min_iteration_length=_as_optional_int(min_iter),
            max_iteration_length=_as_optional_int(max_iter),
            inner_tail_pcs=inner_tails,
            has_side_exit=side_exit,
            has_return_inside=has_return,
            has_indirect_inside=has_indirect,
        ))
    loops.sort(key=lambda loop: loop.tail_pc)
    return loops


def loops_by_tail(loops: List[StaticLoop]) -> Dict[int, StaticLoop]:
    """Index a loop list by tail address (the NBLT key)."""
    return {loop.tail_pc: loop for loop in loops}
