"""Static program analysis over assembled :class:`~repro.isa.program.Program`s.

The paper's mechanism is driven entirely by *structural* properties of
loops -- backward-branch distance vs. issue-queue size, nesting, call
depth, and the logical registers a loop body touches -- yet the simulator
discovers them dynamically, one run at a time.  This package recovers the
same properties statically:

* :mod:`repro.analysis.cfg` -- basic-block control-flow graphs, procedure
  discovery and the call graph,
* :mod:`repro.analysis.loops` -- natural-loop detection via dominators,
  with per-loop distance, body length, nesting depth, call depth and
  inline footprint,
* :mod:`repro.analysis.dataflow` -- def/use and initialization analysis
  over the 64 logical registers, plus constant tracking for static store
  addresses,
* :mod:`repro.analysis.absint` -- interprocedural abstract interpretation:
  value-range (interval) domain per register, loop trip-count inference,
  a conservative memory region/alias pass, and static ineffectuality
  detection (no-op moves, dead writes, silent stores),
* :mod:`repro.analysis.predict` -- the static reuse-benefit predictor:
  per-loop and per-instruction-type predicted buffered fraction and
  front-end energy delta under the paper's cost model,
* :mod:`repro.analysis.lint` -- the rule framework (B001-B010) with text,
  JSON and SARIF reports,
* :mod:`repro.analysis.crosscheck` -- runs a program through the timing
  simulator and asserts concordance between the static predictions and
  the dynamic controller's behaviour, plus the prediction-error harness
  validating the predictor against dynamic runs on both engines.

``python -m repro.cli lint`` / ``analyze`` are the command-line surface.
"""

from repro.analysis.absint import (
    Ineffectual,
    Interval,
    IntervalAnalysis,
    MemoryRef,
    TripCount,
    find_ineffectual,
    infer_trip_counts,
    may_alias,
    memory_refs,
)
from repro.analysis.cfg import BasicBlock, ControlFlowGraph, Procedure, build_cfg
from repro.analysis.crosscheck import (
    ControllerEventProbe,
    CrosscheckResult,
    HarnessResult,
    LoopComparison,
    PredictionCheck,
    check_prediction,
    crosscheck,
    kendall_tau,
    prediction_harness,
)
from repro.analysis.dataflow import (
    RegisterFootprint,
    loop_footprint,
    procedure_must_writes,
    resolve_static_stores,
    undefined_reads,
)
from repro.analysis.lint import (
    Finding,
    LintReport,
    RuleSpec,
    RULES,
    Severity,
    run_lint,
)
from repro.analysis.loops import StaticLoop, analyze_loops
from repro.analysis.predict import (
    LoopPrediction,
    PredictionReport,
    execution_counts,
    predict_grid,
    predict_reuse,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "ControllerEventProbe",
    "CrosscheckResult",
    "Finding",
    "HarnessResult",
    "Ineffectual",
    "Interval",
    "IntervalAnalysis",
    "LintReport",
    "LoopComparison",
    "LoopPrediction",
    "MemoryRef",
    "PredictionCheck",
    "PredictionReport",
    "Procedure",
    "RegisterFootprint",
    "RuleSpec",
    "RULES",
    "Severity",
    "StaticLoop",
    "TripCount",
    "analyze_loops",
    "build_cfg",
    "check_prediction",
    "crosscheck",
    "execution_counts",
    "find_ineffectual",
    "infer_trip_counts",
    "kendall_tau",
    "loop_footprint",
    "may_alias",
    "memory_refs",
    "predict_grid",
    "predict_reuse",
    "prediction_harness",
    "procedure_must_writes",
    "resolve_static_stores",
    "run_lint",
    "undefined_reads",
]
