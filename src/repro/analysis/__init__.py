"""Static program analysis over assembled :class:`~repro.isa.program.Program`s.

The paper's mechanism is driven entirely by *structural* properties of
loops -- backward-branch distance vs. issue-queue size, nesting, call
depth, and the logical registers a loop body touches -- yet the simulator
discovers them dynamically, one run at a time.  This package recovers the
same properties statically:

* :mod:`repro.analysis.cfg` -- basic-block control-flow graphs, procedure
  discovery and the call graph,
* :mod:`repro.analysis.loops` -- natural-loop detection via dominators,
  with per-loop distance, body length, nesting depth, call depth and
  inline footprint,
* :mod:`repro.analysis.dataflow` -- def/use and initialization analysis
  over the 64 logical registers, plus constant tracking for static store
  addresses,
* :mod:`repro.analysis.lint` -- the rule framework (B001-B006) with text,
  JSON and SARIF reports,
* :mod:`repro.analysis.crosscheck` -- runs a program through the timing
  simulator and asserts concordance between the static predictions and
  the dynamic controller's behaviour.

``python -m repro.cli lint`` is the command-line surface.
"""

from repro.analysis.cfg import BasicBlock, ControlFlowGraph, Procedure, build_cfg
from repro.analysis.crosscheck import (
    ControllerEventProbe,
    CrosscheckResult,
    crosscheck,
)
from repro.analysis.dataflow import (
    RegisterFootprint,
    loop_footprint,
    resolve_static_stores,
    undefined_reads,
)
from repro.analysis.lint import (
    Finding,
    LintReport,
    RuleSpec,
    RULES,
    Severity,
    run_lint,
)
from repro.analysis.loops import StaticLoop, analyze_loops

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "ControllerEventProbe",
    "CrosscheckResult",
    "Finding",
    "LintReport",
    "Procedure",
    "RegisterFootprint",
    "RuleSpec",
    "RULES",
    "Severity",
    "StaticLoop",
    "analyze_loops",
    "build_cfg",
    "crosscheck",
    "loop_footprint",
    "resolve_static_stores",
    "run_lint",
    "undefined_reads",
]
