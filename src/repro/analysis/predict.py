"""Static reuse-benefit prediction.

Predicts, from the program text alone, what the reuse-capable issue
queue will do at run time: which loops buffer, how many instructions
each supplies from the reuse buffer, the committed buffered-instruction
fraction, and the front-end energy delta under the paper's cost model.

The prediction composes three static facts with one calibrated model of
the controller:

* loop structure and bufferability from
  :func:`~repro.analysis.loops.analyze_loops`,
* trip counts from :func:`~repro.analysis.absint.infer_trip_counts`,
* per-pc execution counts from :func:`execution_counts` (loop nests
  multiply, procedures run once per predicted call).

The session model mirrors the controller's observable behaviour:

* Detection fires on the loop's *first* tail decode of every entry into
  the loop (the bimodal predictor initializes weakly taken, so the
  backward branch is predicted taken immediately).  One entry into the
  loop is one *session*.
* Buffering then captures ``k = floor(iq_size / L)`` further iterations
  (``L`` = decoded instructions per iteration, callees inlined) before
  the queue cannot hold another iteration and the controller promotes
  to reuse mode.
* The remaining ``N - 1 - k`` iterations of an ``N``-trip session are
  supplied from the buffer: ``(N - 1 - k) * L`` committed instructions
  per session.
* The loop's exit mispredicts out of reuse mode without registering the
  loop in the non-bufferable loop table, so every session re-buffers.
* A loop containing another candidate loop is revoked once (``inner
  loop``) and NBLT-blocked for the rest of the run; a loop whose
  iteration cannot fit the queue is revoked once (``iq full``);
  a loop whose backward distance exceeds the queue never detects.

Everything is emitted as a JSON-ready :class:`PredictionReport`; the
``repro analyze`` CLI serializes it next to the B007-B010 lint findings
(the SARIF side), and ``repro lint --crosscheck``'s prediction-error
harness (:mod:`repro.analysis.crosscheck`) validates the fractions
against the dynamic :class:`~repro.core.controller.ControllerEvent`
log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.absint import IntervalAnalysis, TripCount, \
    infer_trip_counts
from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow import _loop_instructions
from repro.analysis.loops import StaticLoop, analyze_loops
from repro.arch.stats import REUSE_BUCKET_OF, REUSE_TYPE_BUCKETS
from repro.isa.program import TEXT_BASE, Program
from repro.power.params import PowerParams

#: Why a loop is predicted to supply nothing.
BLOCK_TOO_LARGE = "too-large"          # backward distance exceeds the queue
BLOCK_INNER_LOOP = "inner-loop"        # an inner candidate revokes + NBLT
BLOCK_OVERFLOW = "iq-overflow"         # one iteration cannot fit the queue
BLOCK_SHORT_TRIP = "short-trip"        # loop exits before promotion
BLOCK_UNKNOWN_TRIP = "unknown-trip"    # no static trip count


# -- execution counts ---------------------------------------------------------


def _loop_multiplier(pc: int, loops: List[StaticLoop],
                     trip_counts: Dict[int, TripCount]) -> Tuple[int, bool]:
    """Product of enclosing trip counts; True when any count is unknown."""
    multiplier = 1
    approximate = False
    for loop in loops:
        if loop.head_pc <= pc <= loop.tail_pc:
            trips = trip_counts.get(loop.tail_pc)
            exact = trips.exact if trips is not None else None
            if exact is None:
                approximate = True
            else:
                multiplier *= exact
    return multiplier, approximate


def execution_counts(cfg: ControlFlowGraph, loops: List[StaticLoop],
                     trip_counts: Dict[int, TripCount],
                     ) -> Tuple[Dict[int, int], bool]:
    """Predicted commit count per instruction pc.

    Loop nests multiply (pc-interval containment; an unknown trip count
    contributes a factor of 1 and flags the result approximate), and a
    procedure's body runs once per predicted execution of its call
    sites, propagated in call-graph dependency order.  Returns
    ``(counts, approximate)``; unreachable blocks are excluded.
    """
    approximate = False
    # Procedure entry counts in call-graph dependency order.
    proc_counts: Dict[int, int] = {}
    order: List[int] = []
    visiting: Dict[int, int] = {}      # 0 = in progress, 1 = done

    def visit(entry_pc: int) -> None:
        nonlocal approximate
        state = visiting.get(entry_pc)
        if state == 1:
            return
        if state == 0:                 # recursion: no static bound
            approximate = True
            return
        visiting[entry_pc] = 0
        for callee in sorted(cfg.call_graph.get(entry_pc, frozenset())):
            visit(callee)
        visiting[entry_pc] = 1
        order.append(entry_pc)

    entry = cfg.program.entry_point
    visit(entry)
    for proc_entry in cfg.procedures:
        visit(proc_entry)

    proc_counts[entry] = 1
    # Propagate caller counts to callees, callers first.
    for proc_entry in reversed(order):
        proc = cfg.procedures.get(proc_entry)
        if proc is None:
            continue
        caller_count = proc_counts.get(proc_entry, 0)
        for site in proc.call_sites:
            if site.target is None:
                approximate = True
                continue
            multiplier, approx = _loop_multiplier(site.pc, loops,
                                                  trip_counts)
            approximate = approximate or approx
            proc_counts[site.target] = (proc_counts.get(site.target, 0)
                                        + caller_count * multiplier)

    counts: Dict[int, int] = {}
    for proc_entry, proc in cfg.procedures.items():
        base = proc_counts.get(proc_entry, 0)
        for block_index in proc.blocks:
            if block_index not in cfg.reachable:
                continue
            block = cfg.blocks[block_index]
            for inst in cfg.instructions(block):
                if inst.pc is None:
                    continue
                multiplier, approx = _loop_multiplier(inst.pc, loops,
                                                      trip_counts)
                approximate = approximate or approx
                counts[inst.pc] = base * multiplier
    return counts, approximate


# -- per-loop prediction ------------------------------------------------------


@dataclass(frozen=True)
class LoopPrediction:
    """Predicted reuse behaviour of one loop at one queue size."""

    #: The static loop (tail pc identifies it everywhere).
    tail_pc: int
    head_pc: int
    #: Backward distance head..tail, in instructions.
    size: int
    #: Decoded instructions per iteration, callees inlined.
    iteration_length: Optional[int]
    #: Static trip-count verdict.
    trip: TripCount
    #: Predicted entries into the loop over the whole run.
    sessions: int
    #: Iterations captured per session before promotion.
    buffered_iterations: int
    #: Committed instructions supplied from the buffer, whole run.
    predicted_supplied: int
    #: Why the prediction is zero, when it is.
    blocked: Optional[str]
    #: Supplied instructions per type bucket (whole run).
    type_supplied: Dict[str, int] = field(default_factory=dict)
    #: Predicted front-end energy delta, pJ (negative = net saving).
    energy_delta: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (stable keys, hex addresses)."""
        return {
            "tail_pc": f"{self.tail_pc:#x}",
            "head_pc": f"{self.head_pc:#x}",
            "size": self.size,
            "iteration_length": self.iteration_length,
            "trip": self.trip.to_dict(),
            "sessions": self.sessions,
            "buffered_iterations": self.buffered_iterations,
            "predicted_supplied": self.predicted_supplied,
            "blocked": self.blocked,
            "type_supplied": {bucket: self.type_supplied[bucket]
                              for bucket in sorted(self.type_supplied)},
            "energy_delta": round(self.energy_delta, 3),
        }


@dataclass(frozen=True)
class PredictionReport:
    """Whole-program static reuse prediction at one queue size."""

    program: str
    iq_size: int
    loops: List[LoopPrediction]
    #: Predicted architectural commit count (halt included).
    predicted_committed: int
    #: Predicted committed instructions supplied from the reuse buffer.
    predicted_supplied: int
    #: True when any trip count, call target or recursion was unknown.
    approximate: bool
    #: Supplied instructions per type bucket, whole program.
    type_supplied: Dict[str, int] = field(default_factory=dict)
    #: Net predicted front-end energy delta, pJ (negative = saving).
    energy_delta: float = 0.0

    @property
    def predicted_fraction(self) -> float:
        """Predicted committed buffered-instruction fraction."""
        if self.predicted_committed <= 0:
            return 0.0
        return self.predicted_supplied / self.predicted_committed

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready report (stable keys and ordering)."""
        return {
            "program": self.program,
            "iq_size": self.iq_size,
            "predicted_committed": self.predicted_committed,
            "predicted_supplied": self.predicted_supplied,
            "predicted_fraction": round(self.predicted_fraction, 6),
            "approximate": self.approximate,
            "energy_delta": round(self.energy_delta, 3),
            "type_supplied": {bucket: self.type_supplied.get(bucket, 0)
                              for bucket in REUSE_TYPE_BUCKETS},
            "loops": [loop.to_dict() for loop in self.loops],
        }

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON export."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def to_sarif(self) -> Dict[str, object]:
        """A minimal SARIF 2.1.0 log with one run (one program/IQ cell).

        Every loop becomes one note-level result: either
        ``predict/supply`` (the loop is predicted to feed the pipeline
        from the reuse buffer) or ``predict/blocked-<reason>``.  Region
        lines are 1-based instruction indices, the same stand-in for
        source lines :meth:`repro.analysis.lint.LintReport.to_sarif`
        uses, so both logs overlay on the same listing.
        """
        artifact = f"{self.program}.s"
        results = []
        for loop in self.loops:
            if loop.blocked is None:
                rule = "predict/supply"
                message = (
                    f"loop predicted to supply {loop.predicted_supplied} "
                    f"committed instruction(s) from the reuse buffer "
                    f"({loop.buffered_iterations} buffered iteration(s) "
                    f"x {loop.sessions} session(s)); front-end energy "
                    f"delta {loop.energy_delta:+.1f} pJ")
            else:
                rule = f"predict/blocked-{loop.blocked}"
                message = (
                    f"loop predicted not to supply: {loop.blocked} "
                    f"(size {loop.size}, iteration length "
                    f"{loop.iteration_length}, trip {loop.trip.kind}); "
                    f"front-end energy delta {loop.energy_delta:+.1f} pJ")
            results.append({
                "ruleId": rule,
                "level": "note",
                "message": {"text": message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": artifact},
                        "region": {
                            "startLine":
                                (loop.head_pc - TEXT_BASE) // 4 + 1,
                            "endLine":
                                (loop.tail_pc - TEXT_BASE) // 4 + 1,
                        },
                    }
                }],
            })
        rule_ids = ["predict/supply"] + [
            f"predict/blocked-{reason}"
            for reason in (BLOCK_TOO_LARGE, BLOCK_INNER_LOOP,
                           BLOCK_OVERFLOW, BLOCK_UNKNOWN_TRIP,
                           BLOCK_SHORT_TRIP)
        ]
        return {
            "version": "2.1.0",
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "runs": [{
                "tool": {"driver": {
                    "name": "repro-analyze",
                    "informationUri":
                        "https://example.invalid/repro/docs/analysis.md",
                    "rules": [
                        {"id": rule_id,
                         "defaultConfiguration": {"level": "note"}}
                        for rule_id in rule_ids
                    ],
                }},
                "results": results,
                "properties": {
                    "iq_size": self.iq_size,
                    "predicted_fraction":
                        round(self.predicted_fraction, 6),
                    "energy_delta": round(self.energy_delta, 3),
                    "approximate": self.approximate,
                },
            }],
        }


def _session_energy(params: PowerParams, iq_size: int,
                    iteration_length: int, buffered: int,
                    supplied_per_session: int, nblt_inserts: int,
                    sessions: int) -> float:
    """Front-end energy delta of one loop's predicted reuse activity.

    Negative means the mechanism saves energy.  Per supplied
    instruction the front end skips the icache read, decode, rename
    lookup and full queue insert, paying a logical-register-list read
    and a partial queue update instead; per session the buffering pass
    pays one LRL write per captured entry and a detector/NBLT lookup at
    the tail.  Queue-port energies scale with the configured size the
    same way :meth:`~repro.power.params.PowerParams.iq_scale` does.
    """
    scale = (iq_size / params.ref_iq_size) ** 0.7
    saved = (params.e_icache_access + params.e_decode
             + params.e_rename_lookup + params.e_iq_insert * scale)
    paid = params.e_lrl_read + params.e_iq_partial_update * scale
    per_supplied = paid - saved
    capture_cost = (params.e_lrl_write * iteration_length * (1 + buffered)
                    + params.e_nblt_lookup + params.e_detector
                    * iteration_length * (1 + buffered))
    return (per_supplied * supplied_per_session * sessions
            + capture_cost * sessions
            + params.e_nblt_insert * nblt_inserts)


def _bucket_counts(cfg: ControlFlowGraph,
                   loop: StaticLoop) -> Dict[str, int]:
    """Instruction-type histogram of one iteration (callees inlined)."""
    buckets = {bucket: 0 for bucket in REUSE_TYPE_BUCKETS}
    for inst in _loop_instructions(cfg, loop):
        buckets[REUSE_BUCKET_OF[inst.op.icls]] += 1
    return buckets


def predict_reuse(program: Program, iq_size: int,
                  params: Optional[PowerParams] = None,
                  cfg: Optional[ControlFlowGraph] = None,
                  loops: Optional[List[StaticLoop]] = None,
                  trip_counts: Optional[Dict[int, TripCount]] = None,
                  analysis: Optional[IntervalAnalysis] = None,
                  ) -> PredictionReport:
    """Predict the program's reuse behaviour at one queue size.

    All analysis inputs are optional and recomputed when omitted;
    passing them lets callers (the CLI, the prediction harness) share
    one CFG/interval fixpoint across queue sizes.
    """
    if params is None:
        params = PowerParams()
    if cfg is None:
        cfg = build_cfg(program)
    if loops is None:
        loops = analyze_loops(cfg)
    if analysis is None:
        analysis = IntervalAnalysis(cfg)
    if trip_counts is None:
        trip_counts = infer_trip_counts(cfg, loops, analysis)

    counts, approximate = execution_counts(cfg, loops, trip_counts)
    predicted_committed = sum(counts.values())

    predictions: List[LoopPrediction] = []
    total_supplied = 0
    total_types = {bucket: 0 for bucket in REUSE_TYPE_BUCKETS}
    total_energy = 0.0
    for loop in loops:
        trip = trip_counts[loop.tail_pc]
        length = loop.max_iteration_length
        tail_count = counts.get(loop.tail_pc, 0)
        trips = trip.exact
        if trips is not None and trips > 0:
            sessions = tail_count // trips
        else:
            sessions = 1 if tail_count else 0

        blocked: Optional[str] = None
        buffered = 0
        supplied = 0
        type_supplied = {bucket: 0 for bucket in REUSE_TYPE_BUCKETS}
        energy = 0.0
        nblt_inserts = 0
        if not loop.fits(iq_size):
            blocked = BLOCK_TOO_LARGE
        elif loop.inner_tail_pcs:
            # The inner candidate's detection revokes the first session
            # and the NBLT blocks every later one.
            blocked = BLOCK_INNER_LOOP
            nblt_inserts = 1 if sessions else 0
            energy = (params.e_nblt_insert * nblt_inserts
                      + params.e_nblt_lookup * sessions)
        elif length is None or length > iq_size:
            # Buffering starts but one iteration overflows the queue.
            blocked = BLOCK_OVERFLOW
            nblt_inserts = 1 if sessions else 0
            energy = (params.e_nblt_insert * nblt_inserts
                      + params.e_nblt_lookup * sessions)
        elif trips is None:
            blocked = BLOCK_UNKNOWN_TRIP
        else:
            buffered = min(iq_size // length, trips - 1)
            reusable = trips - 1 - buffered
            if reusable <= 0:
                # Exits (mispredict revoke, no NBLT) before promotion:
                # the capture energy is paid again every session.
                blocked = BLOCK_SHORT_TRIP
                energy = _session_energy(params, iq_size, length, buffered,
                                         0, 0, sessions)
            else:
                per_session = reusable * length
                supplied = per_session * sessions
                histogram = _bucket_counts(cfg, loop)
                for bucket, count in histogram.items():
                    type_supplied[bucket] = count * reusable * sessions
                energy = _session_energy(params, iq_size, length, buffered,
                                         per_session, 0, sessions)
        predictions.append(LoopPrediction(
            tail_pc=loop.tail_pc, head_pc=loop.head_pc, size=loop.size,
            iteration_length=length, trip=trip, sessions=sessions,
            buffered_iterations=buffered, predicted_supplied=supplied,
            blocked=blocked, type_supplied=type_supplied,
            energy_delta=energy))
        total_supplied += supplied
        total_energy += energy
        for bucket, count in type_supplied.items():
            total_types[bucket] += count

    return PredictionReport(
        program=program.name, iq_size=iq_size, loops=predictions,
        predicted_committed=predicted_committed,
        predicted_supplied=total_supplied, approximate=approximate,
        type_supplied=total_types, energy_delta=total_energy)


def predict_grid(program: Program, iq_sizes: Iterable[int],
                 params: Optional[PowerParams] = None,
                 ) -> List[PredictionReport]:
    """Predictions across queue sizes, sharing one static analysis."""
    cfg = build_cfg(program)
    loops = analyze_loops(cfg)
    analysis = IntervalAnalysis(cfg)
    trip_counts = infer_trip_counts(cfg, loops, analysis)
    return [predict_reuse(program, iq_size, params=params, cfg=cfg,
                          loops=loops, trip_counts=trip_counts,
                          analysis=analysis)
            for iq_size in iq_sizes]
