"""Basic-block control-flow graph construction.

A :class:`ControlFlowGraph` partitions a program's text segment into
maximal basic blocks (leaders at the entry point, at every direct
branch/jump/call target and after every control-flow instruction) and
connects them with typed edges:

* ``fall`` -- sequential fall-through (including the not-taken side of a
  conditional branch),
* ``taken`` -- the taken side of a direct branch or jump,
* ``call-return`` -- the *summary* edge from a call block to its return
  site: intra-procedural analyses step over the callee, while the call
  graph records the transfer itself.

Procedure bodies are discovered from direct call targets (plus the
implicit ``__start`` routine at the entry point); returns (``jr $ra``)
and ``halt`` terminate a routine, and indirect jumps that are not returns
conservatively end the known control flow of their block.

The graph is the substrate for dominator-based loop analysis
(:mod:`repro.analysis.loops`), register dataflow
(:mod:`repro.analysis.dataflow`) and the B004 unreachable-block rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass
from repro.isa.program import Program

#: Edge kinds.
EDGE_FALL = "fall"
EDGE_TAKEN = "taken"
EDGE_CALL_RETURN = "call-return"

#: Name given to the implicit routine at the program entry point.
START_ROUTINE = "__start"


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    #: Position in :attr:`ControlFlowGraph.blocks`.
    index: int
    #: First instruction index (into ``program.instructions``).
    start: int
    #: One past the last instruction index.
    end: int
    #: Outgoing ``(block index, edge kind)`` pairs.
    successors: List[Tuple[int, str]] = field(default_factory=list)
    #: Incoming block indices (deduplicated, sorted at build time).
    predecessors: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start

    def successor_indices(self) -> List[int]:
        """Successor block indices, edge kinds dropped."""
        return [index for index, _ in self.successors]

    def __repr__(self) -> str:
        return (f"<BasicBlock #{self.index} [{self.start}:{self.end}) "
                f"-> {self.successor_indices()}>")


@dataclass(frozen=True)
class CallSite:
    """One direct or indirect call instruction."""

    #: Byte address of the call instruction.
    pc: int
    #: Callee entry address (``None`` for indirect calls).
    target: Optional[int]


@dataclass
class Procedure:
    """One routine: the blocks intra-procedurally reachable from an entry."""

    #: Entry byte address.
    entry_pc: int
    #: Label name if the entry address carries one, else a synthetic name.
    name: str
    #: Block indices of the body (sorted).
    blocks: Tuple[int, ...]
    #: Total instructions across the body blocks.
    instruction_count: int
    #: Blocks whose terminator is a return (``jr $ra``).
    return_blocks: Tuple[int, ...]
    #: Call instructions inside the body.
    call_sites: Tuple[CallSite, ...]
    #: True when the body contains an indirect jump that is not a return.
    has_indirect_flow: bool


class ControlFlowGraph:
    """Blocks, edges, procedures and the call graph of one program."""

    def __init__(self, program: Program, blocks: List[BasicBlock],
                 block_of_index: List[int]):
        self.program = program
        self.blocks = blocks
        #: Maps instruction index -> owning block index.
        self._block_of_index = block_of_index
        #: Routines keyed by entry pc (always includes ``__start``).
        self.procedures: Dict[int, Procedure] = {}
        #: Call graph: routine entry pc -> callee entry pcs (direct only).
        self.call_graph: Dict[int, FrozenSet[int]] = {}
        #: Blocks reachable from the entry point (following calls).
        self.reachable: FrozenSet[int] = frozenset()
        self._discover_procedures()
        self._compute_reachability()

    # -- lookups -------------------------------------------------------------

    @property
    def entry_block(self) -> BasicBlock:
        """The block holding the program entry point."""
        return self.blocks[0]

    def block_at_index(self, index: int) -> BasicBlock:
        """The block owning instruction ``index``."""
        return self.blocks[self._block_of_index[index]]

    def block_at_pc(self, pc: int) -> Optional[BasicBlock]:
        """The block owning byte address ``pc``, or None outside text."""
        index = self.program.index_of(pc)
        if index is None:
            return None
        return self.block_at_index(index)

    def instructions(self, block: BasicBlock) -> List[Instruction]:
        """The instructions of one block."""
        return self.program.instructions[block.start:block.end]

    def terminator(self, block: BasicBlock) -> Instruction:
        """The last instruction of one block."""
        return self.program.instructions[block.end - 1]

    def unreachable_blocks(self) -> List[BasicBlock]:
        """Blocks no path from the entry point (via calls) can reach."""
        return [block for block in self.blocks
                if block.index not in self.reachable]

    # -- construction helpers ----------------------------------------------------

    def _label_for(self, pc: int) -> Optional[str]:
        for label, address in sorted(self.program.labels.items()):
            if address == pc:
                return label
        return None

    def _discover_procedures(self) -> None:
        """Find routine bodies from the entry point and direct call targets."""
        entries: Dict[int, str] = {self.program.entry_point: START_ROUTINE}
        for block in self.blocks:
            term = self.terminator(block)
            if term.is_call and term.target is not None:
                if self.program.index_of(term.target) is not None:
                    label = self._label_for(term.target)
                    entries.setdefault(
                        term.target, label or f"proc_{term.target:#x}")
        for entry_pc, name in sorted(entries.items()):
            self.procedures[entry_pc] = self._trace_procedure(entry_pc, name)
        for entry_pc, proc in self.procedures.items():
            callees = frozenset(
                site.target for site in proc.call_sites
                if site.target is not None and site.target in self.procedures)
            self.call_graph[entry_pc] = callees

    def _trace_procedure(self, entry_pc: int, name: str) -> Procedure:
        entry_index = self.program.index_of(entry_pc)
        assert entry_index is not None
        entry_block = self._block_of_index[entry_index]
        seen: Set[int] = set()
        worklist = [entry_block]
        returns: List[int] = []
        calls: List[CallSite] = []
        indirect = False
        while worklist:
            index = worklist.pop()
            if index in seen:
                continue
            seen.add(index)
            block = self.blocks[index]
            term = self.terminator(block)
            if term.is_return:
                returns.append(index)
            elif term.is_call:
                calls.append(CallSite(pc=int(term.pc or 0),
                                      target=term.target
                                      if not term.is_indirect_control
                                      else None))
            elif term.is_indirect_control:
                indirect = True
            for succ, _kind in block.successors:
                if succ not in seen:
                    worklist.append(succ)
        blocks = tuple(sorted(seen))
        count = sum(len(self.blocks[index]) for index in blocks)
        return Procedure(entry_pc=entry_pc, name=name, blocks=blocks,
                         instruction_count=count,
                         return_blocks=tuple(sorted(returns)),
                         call_sites=tuple(sorted(calls,
                                                 key=lambda s: s.pc)),
                         has_indirect_flow=indirect)

    def _compute_reachability(self) -> None:
        """Whole-program reachability: CFG edges plus call transfers."""
        seen: Set[int] = set()
        worklist = [self.entry_block.index]
        while worklist:
            index = worklist.pop()
            if index in seen:
                continue
            seen.add(index)
            block = self.blocks[index]
            for succ, _kind in block.successors:
                if succ not in seen:
                    worklist.append(succ)
            term = self.terminator(block)
            if term.is_call and term.target is not None:
                callee_index = self.program.index_of(term.target)
                if callee_index is not None:
                    callee_block = self._block_of_index[callee_index]
                    if callee_block not in seen:
                        worklist.append(callee_block)
        self.reachable = frozenset(seen)

    # -- interprocedural view (used by dataflow) ----------------------------------

    def supergraph_successors(self, block: BasicBlock) -> List[int]:
        """Successors in the interprocedural supergraph.

        A direct call block flows into its callee's entry block instead of
        its return site; each procedure's return blocks flow back to every
        return site of a call targeting that procedure.  Indirect calls
        keep their summary edge (the callee is unknown).
        """
        term = self.terminator(block)
        if term.is_call and term.target is not None \
                and term.target in self.procedures:
            entry_index = self.program.index_of(term.target)
            assert entry_index is not None
            return [self._block_of_index[entry_index]]
        if term.is_return:
            return sorted(self._return_sites_for(block.index))
        return block.successor_indices()

    def _return_sites_for(self, block_index: int) -> Set[int]:
        sites: Set[int] = set()
        owners = [proc for proc in self.procedures.values()
                  if block_index in proc.blocks
                  and proc.name != START_ROUTINE]
        for proc in owners:
            for caller in self.procedures.values():
                for site in caller.call_sites:
                    if site.target != proc.entry_pc:
                        continue
                    call_index = self.program.index_of(site.pc)
                    if call_index is None:
                        continue
                    call_block = self.blocks[self._block_of_index[call_index]]
                    for succ, kind in call_block.successors:
                        if kind == EDGE_CALL_RETURN:
                            sites.add(succ)
        return sites

    # -- introspection ----------------------------------------------------------

    def __repr__(self) -> str:
        return (f"<ControlFlowGraph {self.program.name!r}: "
                f"{len(self.blocks)} blocks, "
                f"{len(self.procedures)} procedures>")


def _find_leaders(program: Program) -> List[int]:
    """Instruction indices starting a basic block."""
    count = len(program.instructions)
    leaders: Set[int] = {0} if count else set()
    for index, inst in enumerate(program.instructions):
        ends_block = inst.is_control or inst.is_halt
        if ends_block and index + 1 < count:
            leaders.add(index + 1)
        if inst.is_direct_control and inst.target is not None:
            target_index = program.index_of(inst.target)
            if target_index is not None:
                leaders.add(target_index)
    return sorted(leaders)


def build_cfg(program: Program) -> ControlFlowGraph:
    """Construct the :class:`ControlFlowGraph` of ``program``."""
    if not program.instructions:
        raise ValueError("cannot build a CFG for an empty program")
    leaders = _find_leaders(program)
    count = len(program.instructions)
    blocks: List[BasicBlock] = []
    for position, start in enumerate(leaders):
        end = leaders[position + 1] if position + 1 < len(leaders) else count
        blocks.append(BasicBlock(index=position, start=start, end=end))
    block_of_index = [0] * count
    for block in blocks:
        for index in range(block.start, block.end):
            block_of_index[index] = block.index

    def block_of_pc(pc: int) -> Optional[int]:
        index = program.index_of(pc)
        if index is None:
            return None
        return block_of_index[index]

    for block in blocks:
        term = program.instructions[block.end - 1]
        icls = term.op.icls
        fall = block.index + 1 if block.end < count else None
        if icls is InstrClass.BRANCH:
            if term.target is not None:
                taken = block_of_pc(term.target)
                if taken is not None:
                    block.successors.append((taken, EDGE_TAKEN))
            if fall is not None:
                block.successors.append((fall, EDGE_FALL))
        elif icls is InstrClass.JUMP:
            if term.target is not None:
                taken = block_of_pc(term.target)
                if taken is not None:
                    block.successors.append((taken, EDGE_TAKEN))
        elif icls in (InstrClass.CALL, InstrClass.ICALL):
            if fall is not None:
                block.successors.append((fall, EDGE_CALL_RETURN))
        elif icls is InstrClass.IJUMP:
            pass                     # return or unknown indirect flow
        elif icls is InstrClass.HALT:
            pass
        else:
            if fall is not None:
                block.successors.append((fall, EDGE_FALL))
    for block in blocks:
        for succ, _kind in block.successors:
            if block.index not in blocks[succ].predecessors:
                blocks[succ].predecessors.append(block.index)
    for block in blocks:
        block.predecessors.sort()
    return ControlFlowGraph(program, blocks, block_of_index)
