"""Static/dynamic concordance checking.

The static analyzer predicts, per loop candidate, whether the reuse
controller can capture it and which revoke causes are possible.  The
dynamic controller logs every decision it actually takes
(:class:`~repro.core.controller.ControllerEvent`).  :func:`crosscheck`
runs a program through :func:`repro.sim.simulator.run_timing` with a
:class:`ControllerEventProbe` attached and asserts that the two views
agree:

* every ``buffer_start`` names a static loop candidate whose distance
  fits the issue queue (the detector and :func:`is_loop_candidate` must
  agree on what a capturable loop is),
* every ``promote`` concerns a loop the analyzer classified capturable
  (not ``too-large``, not guaranteed-``overflow``), and the captured
  iterations fit the queue: ``iterations x min_iteration_length <=
  iq_size`` whenever the static minimum is known (buffered entries never
  leave the queue, so they can never exceed it),
* every NBLT-registering ``revoke`` carries a reason whose static hazard
  (:data:`REASON_TO_HAZARD`) the analyzer flagged for that loop.

A disagreement is a :class:`ConcordanceViolation` -- either a simulator
bug or an analyzer bug, which is exactly the point: the two
implementations verify each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.loops import (
    CLASS_OVERFLOW,
    CLASS_TOO_LARGE,
    HAZARD_EXIT,
    HAZARD_INNER_LOOP,
    HAZARD_IQ_OVERFLOW,
    StaticLoop,
    analyze_loops,
    loops_by_tail,
)
from repro.arch.config import MachineConfig
from repro.arch.probe import PipelineProbe
from repro.core.controller import ControllerEvent
from repro.isa.program import Program

#: Dynamic revoke reason -> static hazard tag.  Only the NBLT-registering
#: reasons appear; mispredict recovery and normal reuse exit do not mark
#: a loop non-bufferable and carry no static claim.
REASON_TO_HAZARD: Dict[str, str] = {
    "exit": HAZARD_EXIT,
    "exit at tail": HAZARD_EXIT,
    "inner loop": HAZARD_INNER_LOOP,
    "issue queue full": HAZARD_IQ_OVERFLOW,
}


class ControllerEventProbe(PipelineProbe):
    """Cycle probe collecting the controller's event log.

    The controller appends events as decisions happen, stamping each with
    the cycle it was taken in; this probe copies the new ones into
    :attr:`events` at the end of every cycle through the controller's
    :meth:`~repro.core.controller.ReuseController.iter_events_since`
    cursor helper.  A cursor (rather than clearing the log) keeps the
    probe passive, as the probe contract requires.
    """

    def __init__(self) -> None:
        self.events: List[ControllerEvent] = []
        self._cursor = 0

    def on_cycle(self, pipeline: Any) -> None:
        fresh, self._cursor = \
            pipeline.controller.iter_events_since(self._cursor)
        self.events.extend(fresh)

    @property
    def timestamped(self) -> List[Tuple[int, ControllerEvent]]:
        """Deprecated ``(cycle, event)`` view of :attr:`events`.

        Kept for one release: events carry :attr:`ControllerEvent.cycle`
        directly now (same shim as
        :func:`repro.core.controller.timestamped_events`).
        """
        import warnings

        warnings.warn(
            "ControllerEventProbe.timestamped is deprecated: events "
            "carry their cycle directly (event.cycle)",
            DeprecationWarning, stacklevel=2)
        return [(event.cycle, event) for event in self.events]


@dataclass(frozen=True)
class ConcordanceViolation:
    """One disagreement between the static and dynamic views."""

    #: Which check failed (``buffer_start`` / ``promote`` / ``revoke``).
    check: str
    #: The event's cycle.
    cycle: int
    #: The loop tail the event concerned (None when missing).
    tail_pc: Optional[int]
    #: Explanation.
    message: str


@dataclass
class CrosscheckResult:
    """Outcome of one program/config concordance run."""

    program: str
    iq_size: int
    #: Controller events observed during the run (each carries its cycle).
    events: List[ControllerEvent]
    #: Static loops keyed by tail pc.
    static_loops: Dict[int, StaticLoop]
    #: Disagreements (empty = full concordance).
    violations: List[ConcordanceViolation] = field(default_factory=list)
    #: Event counts by kind, for reporting.
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when static and dynamic views fully agree."""
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary."""
        return {
            "program": self.program,
            "iq_size": self.iq_size,
            "ok": self.ok,
            "counts": dict(sorted(self.counts.items())),
            "violations": [
                {
                    "check": v.check,
                    "cycle": v.cycle,
                    "tail_pc": (None if v.tail_pc is None
                                else f"{v.tail_pc:#x}"),
                    "message": v.message,
                }
                for v in self.violations
            ],
        }


def _check_buffer_start(event: ControllerEvent, cycle: int,
                        loops: Dict[int, StaticLoop], iq_size: int,
                        out: List[ConcordanceViolation]) -> None:
    loop = loops.get(event.tail_pc) if event.tail_pc is not None else None
    if loop is None:
        out.append(ConcordanceViolation(
            "buffer_start", cycle, event.tail_pc,
            f"dynamic detector fired at {event.tail_pc!r} but no static "
            f"loop candidate has that tail"))
        return
    if event.head_pc != loop.head_pc:
        out.append(ConcordanceViolation(
            "buffer_start", cycle, event.tail_pc,
            f"head mismatch: dynamic {event.head_pc:#x} vs static "
            f"{loop.head_pc:#x}"))
    if not loop.fits(iq_size):
        out.append(ConcordanceViolation(
            "buffer_start", cycle, event.tail_pc,
            f"buffering started on a loop of size {loop.size} that "
            f"cannot fit the {iq_size}-entry queue"))


def _check_promote(event: ControllerEvent, cycle: int,
                   loops: Dict[int, StaticLoop], iq_size: int,
                   out: List[ConcordanceViolation]) -> None:
    loop = loops.get(event.tail_pc) if event.tail_pc is not None else None
    if loop is None:
        out.append(ConcordanceViolation(
            "promote", cycle, event.tail_pc,
            f"promoted loop {event.tail_pc!r} has no static candidate"))
        return
    verdict = loop.classify(iq_size)
    if verdict in (CLASS_TOO_LARGE, CLASS_OVERFLOW):
        out.append(ConcordanceViolation(
            "promote", cycle, event.tail_pc,
            f"loop statically classified {verdict!r} was promoted to "
            f"Code Reuse"))
    if event.iterations < 1:
        out.append(ConcordanceViolation(
            "promote", cycle, event.tail_pc,
            "promotion with no complete iteration buffered"))
    if loop.min_iteration_length is not None:
        need = event.iterations * loop.min_iteration_length
        if need > iq_size:
            out.append(ConcordanceViolation(
                "promote", cycle, event.tail_pc,
                f"{event.iterations} buffered iteration(s) of at least "
                f"{loop.min_iteration_length} instructions cannot fit "
                f"the {iq_size}-entry queue"))


def _check_revoke(event: ControllerEvent, cycle: int,
                  loops: Dict[int, StaticLoop], iq_size: int,
                  out: List[ConcordanceViolation]) -> None:
    if not event.nblt_insert:
        return                 # mispredict / reuse exit: no static claim
    reason = event.reason or ""
    hazard = REASON_TO_HAZARD.get(reason)
    if hazard is None:
        out.append(ConcordanceViolation(
            "revoke", cycle, event.tail_pc,
            f"NBLT insert with unmapped revoke reason {reason!r}"))
        return
    loop = loops.get(event.tail_pc) if event.tail_pc is not None else None
    if loop is None:
        out.append(ConcordanceViolation(
            "revoke", cycle, event.tail_pc,
            f"NBLT insert for {event.tail_pc!r} with no static "
            f"candidate"))
        return
    if hazard not in loop.hazards(iq_size):
        out.append(ConcordanceViolation(
            "revoke", cycle, event.tail_pc,
            f"dynamic revoke {reason!r} (hazard {hazard!r}) was not "
            f"statically flagged for the loop at {event.tail_pc:#x} "
            f"(static hazards: {sorted(loop.hazards(iq_size))})"))


def crosscheck(program: Program, config: MachineConfig,
               max_cycles: Optional[int] = None) -> CrosscheckResult:
    """Run ``program`` and compare controller decisions to the analyzer.

    The config's ``reuse_enabled`` flag is forced on (without the
    mechanism there is nothing to check).  Returns a
    :class:`CrosscheckResult`; callers assert :attr:`CrosscheckResult.ok`.
    """
    from repro.sim.simulator import run_timing

    if not config.reuse_enabled:
        config = config.replace(reuse_enabled=True)
    static = loops_by_tail(analyze_loops(build_cfg(program)))
    probe = ControllerEventProbe()
    run_timing(program, config, max_cycles=max_cycles, probes=(probe,))
    iq_size = config.iq_size
    violations: List[ConcordanceViolation] = []
    counts: Dict[str, int] = {}
    for event in probe.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if event.kind == "buffer_start":
            _check_buffer_start(event, event.cycle, static, iq_size,
                                violations)
        elif event.kind == "promote":
            _check_promote(event, event.cycle, static, iq_size, violations)
        elif event.kind == "revoke":
            _check_revoke(event, event.cycle, static, iq_size, violations)
    return CrosscheckResult(
        program=program.name,
        iq_size=iq_size,
        events=probe.events,
        static_loops=static,
        violations=violations,
        counts=counts,
    )
