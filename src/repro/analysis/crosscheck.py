"""Static/dynamic concordance checking.

The static analyzer predicts, per loop candidate, whether the reuse
controller can capture it and which revoke causes are possible.  The
dynamic controller logs every decision it actually takes
(:class:`~repro.core.controller.ControllerEvent`).  :func:`crosscheck`
runs a program through :func:`repro.sim.simulator.run_timing` with a
:class:`ControllerEventProbe` attached and asserts that the two views
agree:

* every ``buffer_start`` names a static loop candidate whose distance
  fits the issue queue (the detector and :func:`is_loop_candidate` must
  agree on what a capturable loop is),
* every ``promote`` concerns a loop the analyzer classified capturable
  (not ``too-large``, not guaranteed-``overflow``), and the captured
  iterations fit the queue: ``iterations x min_iteration_length <=
  iq_size`` whenever the static minimum is known (buffered entries never
  leave the queue, so they can never exceed it),
* every NBLT-registering ``revoke`` carries a reason whose static hazard
  (:data:`REASON_TO_HAZARD`) the analyzer flagged for that loop.

A disagreement is a :class:`ConcordanceViolation` -- either a simulator
bug or an analyzer bug, which is exactly the point: the two
implementations verify each other.

The module also hosts the *prediction-error harness* built on top of the
static reuse-benefit predictor (:mod:`repro.analysis.predict`):
:func:`check_prediction` runs one program/config/engine cell and compares
the predicted buffered fraction, per-loop supply counts and blocking
verdicts against the dynamic controller's event log and commit counters;
:func:`prediction_harness` sweeps a grid of programs x IQ sizes x engines
and aggregates three acceptance criteria:

* predicted buffered fraction within an absolute tolerance (default
  5 percentage points) of the dynamic fraction in every cell,
* per-loop benefit *ranking* agreement: pooled Kendall tau-b between
  predicted and dynamic per-loop supply counts at or above a threshold
  (default 0.8),
* zero static/dynamic bufferability contradictions (e.g. a loop the
  predictor called ``too-large`` must never see a dynamic
  ``buffer_start``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.loops import (
    CLASS_OVERFLOW,
    CLASS_TOO_LARGE,
    HAZARD_EXIT,
    HAZARD_INNER_LOOP,
    HAZARD_IQ_OVERFLOW,
    StaticLoop,
    analyze_loops,
    loops_by_tail,
)
from repro.analysis.predict import (
    BLOCK_INNER_LOOP,
    BLOCK_OVERFLOW,
    BLOCK_TOO_LARGE,
    PredictionReport,
    predict_grid,
    predict_reuse,
)
from repro.arch.config import MachineConfig
from repro.arch.probe import PipelineProbe
from repro.core.controller import ControllerEvent
from repro.isa.program import Program

#: Dynamic revoke reason -> static hazard tag.  Only the NBLT-registering
#: reasons appear; mispredict recovery and normal reuse exit do not mark
#: a loop non-bufferable and carry no static claim.
REASON_TO_HAZARD: Dict[str, str] = {
    "exit": HAZARD_EXIT,
    "exit at tail": HAZARD_EXIT,
    "inner loop": HAZARD_INNER_LOOP,
    "issue queue full": HAZARD_IQ_OVERFLOW,
    # trace-reuse controller only: the buffered path stopped repeating.
    # Statically this is an exit from the traced path, but it carries no
    # per-loop hazard claim (any control in the body can diverge), so
    # the hazard-subset check is skipped in trace mode (see
    # _check_revoke).
    "trace divergence": HAZARD_EXIT,
}


class ControllerEventProbe(PipelineProbe):
    """Cycle probe collecting the controller's event log.

    The controller appends events as decisions happen, stamping each with
    the cycle it was taken in; this probe copies the new ones into
    :attr:`events` at the end of every cycle through the controller's
    :meth:`~repro.core.controller.ReuseController.iter_events_since`
    cursor helper.  A cursor (rather than clearing the log) keeps the
    probe passive, as the probe contract requires.
    """

    def __init__(self) -> None:
        self.events: List[ControllerEvent] = []
        self._cursor = 0

    def on_cycle(self, pipeline: Any) -> None:
        fresh, self._cursor = \
            pipeline.controller.iter_events_since(self._cursor)
        self.events.extend(fresh)

    @property
    def timestamped(self) -> List[Tuple[int, ControllerEvent]]:
        """Deprecated ``(cycle, event)`` view of :attr:`events`.

        Kept for one release: events carry :attr:`ControllerEvent.cycle`
        directly now (same shim as
        :func:`repro.core.controller.timestamped_events`).
        """
        import warnings

        warnings.warn(
            "ControllerEventProbe.timestamped is deprecated: events "
            "carry their cycle directly (event.cycle)",
            DeprecationWarning, stacklevel=2)
        return [(event.cycle, event) for event in self.events]


@dataclass(frozen=True)
class ConcordanceViolation:
    """One disagreement between the static and dynamic views."""

    #: Which check failed (``buffer_start`` / ``promote`` / ``revoke``).
    check: str
    #: The event's cycle.
    cycle: int
    #: The loop tail the event concerned (None when missing).
    tail_pc: Optional[int]
    #: Explanation.
    message: str


@dataclass
class CrosscheckResult:
    """Outcome of one program/config concordance run."""

    program: str
    iq_size: int
    #: Controller events observed during the run (each carries its cycle).
    events: List[ControllerEvent]
    #: Static loops keyed by tail pc.
    static_loops: Dict[int, StaticLoop]
    #: Disagreements (empty = full concordance).
    violations: List[ConcordanceViolation] = field(default_factory=list)
    #: Event counts by kind, for reporting.
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when static and dynamic views fully agree."""
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary."""
        return {
            "program": self.program,
            "iq_size": self.iq_size,
            "ok": self.ok,
            "counts": dict(sorted(self.counts.items())),
            "violations": [
                {
                    "check": v.check,
                    "cycle": v.cycle,
                    "tail_pc": (None if v.tail_pc is None
                                else f"{v.tail_pc:#x}"),
                    "message": v.message,
                }
                for v in self.violations
            ],
        }


def _check_buffer_start(event: ControllerEvent, cycle: int,
                        loops: Dict[int, StaticLoop], iq_size: int,
                        out: List[ConcordanceViolation],
                        mode: str = "loop") -> None:
    loop = loops.get(event.tail_pc) if event.tail_pc is not None else None
    if loop is None:
        out.append(ConcordanceViolation(
            "buffer_start", cycle, event.tail_pc,
            f"dynamic detector fired at {event.tail_pc!r} but no static "
            f"loop candidate has that tail"))
        return
    if event.head_pc != loop.head_pc:
        out.append(ConcordanceViolation(
            "buffer_start", cycle, event.tail_pc,
            f"head mismatch: dynamic {event.head_pc:#x} vs static "
            f"{loop.head_pc:#x}"))
    if mode == "trace":
        # the trace controller buffers one dynamic path through the
        # body, which may be much shorter than the static head..tail
        # distance; the static claim that must hold is that the
        # *shortest* path fits the queue
        if (loop.min_iteration_length is not None
                and loop.min_iteration_length > iq_size):
            out.append(ConcordanceViolation(
                "buffer_start", cycle, event.tail_pc,
                f"trace buffering started on a loop whose shortest "
                f"iteration ({loop.min_iteration_length} instructions) "
                f"cannot fit the {iq_size}-entry queue"))
        return
    if not loop.fits(iq_size):
        out.append(ConcordanceViolation(
            "buffer_start", cycle, event.tail_pc,
            f"buffering started on a loop of size {loop.size} that "
            f"cannot fit the {iq_size}-entry queue"))


def _check_promote(event: ControllerEvent, cycle: int,
                   loops: Dict[int, StaticLoop], iq_size: int,
                   out: List[ConcordanceViolation],
                   mode: str = "loop") -> None:
    loop = loops.get(event.tail_pc) if event.tail_pc is not None else None
    if loop is None:
        out.append(ConcordanceViolation(
            "promote", cycle, event.tail_pc,
            f"promoted loop {event.tail_pc!r} has no static candidate"))
        return
    verdict = loop.classify(iq_size)
    if mode != "trace" and verdict in (CLASS_TOO_LARGE, CLASS_OVERFLOW):
        # the trace controller legitimately promotes loops the loop
        # classifier rejects: a statically-too-large body whose hot path
        # is short, or a variable-length body pinned to one path
        out.append(ConcordanceViolation(
            "promote", cycle, event.tail_pc,
            f"loop statically classified {verdict!r} was promoted to "
            f"Code Reuse"))
    if event.iterations < 1:
        out.append(ConcordanceViolation(
            "promote", cycle, event.tail_pc,
            "promotion with no complete iteration buffered"))
    if loop.min_iteration_length is not None:
        need = event.iterations * loop.min_iteration_length
        if need > iq_size:
            out.append(ConcordanceViolation(
                "promote", cycle, event.tail_pc,
                f"{event.iterations} buffered iteration(s) of at least "
                f"{loop.min_iteration_length} instructions cannot fit "
                f"the {iq_size}-entry queue"))


def _check_revoke(event: ControllerEvent, cycle: int,
                  loops: Dict[int, StaticLoop], iq_size: int,
                  out: List[ConcordanceViolation],
                  mode: str = "loop") -> None:
    if not event.nblt_insert:
        return                 # mispredict / reuse exit: no static claim
    reason = event.reason or ""
    hazard = REASON_TO_HAZARD.get(reason)
    if hazard is None:
        out.append(ConcordanceViolation(
            "revoke", cycle, event.tail_pc,
            f"NBLT insert with unmapped revoke reason {reason!r}"))
        return
    loop = loops.get(event.tail_pc) if event.tail_pc is not None else None
    if loop is None:
        out.append(ConcordanceViolation(
            "revoke", cycle, event.tail_pc,
            f"NBLT insert for {event.tail_pc!r} with no static "
            f"candidate"))
        return
    if mode == "trace":
        # a traced path can diverge (or exit) at any control in the
        # body whether or not the loop analyzer flagged a hazard, so
        # trace-mode revokes carry no hazard-subset claim
        return
    if hazard not in loop.hazards(iq_size):
        out.append(ConcordanceViolation(
            "revoke", cycle, event.tail_pc,
            f"dynamic revoke {reason!r} (hazard {hazard!r}) was not "
            f"statically flagged for the loop at {event.tail_pc:#x} "
            f"(static hazards: {sorted(loop.hazards(iq_size))})"))


def _concordance(events: List[ControllerEvent],
                 static: Dict[int, StaticLoop], iq_size: int,
                 mode: str = "loop",
                 ) -> Tuple[List[ConcordanceViolation], Dict[str, int]]:
    """Run every concordance check over one event log.

    ``mode`` is the controller variant that produced the log
    (``MachineConfig.reuse_mode``); trace-mode logs relax the checks
    that assume the buffered region is the full static loop body.
    """
    violations: List[ConcordanceViolation] = []
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if event.kind == "buffer_start":
            _check_buffer_start(event, event.cycle, static, iq_size,
                                violations, mode)
        elif event.kind == "promote":
            _check_promote(event, event.cycle, static, iq_size, violations,
                           mode)
        elif event.kind == "revoke":
            _check_revoke(event, event.cycle, static, iq_size, violations,
                          mode)
    return violations, counts


def crosscheck(program: Program, config: MachineConfig,
               max_cycles: Optional[int] = None,
               engine: str = "object") -> CrosscheckResult:
    """Run ``program`` and compare controller decisions to the analyzer.

    The config's ``reuse_enabled`` flag is forced on (without the
    mechanism there is nothing to check).  ``engine`` selects the
    pipeline core; the event log is read off the finished pipeline's
    controller (not via a probe, which would force the array engine to
    fall back to the object core).  Returns a :class:`CrosscheckResult`;
    callers assert :attr:`CrosscheckResult.ok`.
    """
    from repro.sim.simulator import run_timing

    if not config.reuse_enabled:
        config = config.replace(reuse_enabled=True)
    static = loops_by_tail(analyze_loops(build_cfg(program)))
    _record, pipeline = run_timing(program, config, max_cycles=max_cycles,
                                   keep_pipeline=True, engine=engine)
    events = list(pipeline.controller.events)
    iq_size = config.iq_size
    violations, counts = _concordance(events, static, iq_size,
                                      config.reuse_mode)
    return CrosscheckResult(
        program=program.name,
        iq_size=iq_size,
        events=events,
        static_loops=static,
        violations=violations,
        counts=counts,
    )

# -- prediction-error harness -------------------------------------------------

#: Structural blocking verdicts: a loop carrying one of these can never be
#: promoted to Code Reuse, so a dynamic promote is a contradiction.
_STRUCTURAL_BLOCKS = (BLOCK_TOO_LARGE, BLOCK_INNER_LOOP, BLOCK_OVERFLOW)


def kendall_tau(pairs: Sequence[Tuple[float, float]]) -> float:
    """Kendall tau-b rank correlation of ``(x, y)`` pairs.

    Hand-rolled (no scipy in the image): tau-b = (C - D) /
    sqrt((n0 - tx) * (n0 - ty)) where n0 = n(n-1)/2 and tx/ty count
    pairs tied on x/y.  Fewer than two pairs, or a degenerate set where
    every pair is tied on one variable, scores 1.0 -- there is no
    ranking to disagree about.
    """
    n = len(pairs)
    if n < 2:
        return 1.0
    concordant = discordant = ties_x = ties_y = 0
    for i in range(n):
        x_i, y_i = pairs[i]
        for j in range(i + 1, n):
            x_j, y_j = pairs[j]
            dx = (x_i > x_j) - (x_i < x_j)
            dy = (y_i > y_j) - (y_i < y_j)
            if dx == 0:
                ties_x += 1
            if dy == 0:
                ties_y += 1
            if dx == 0 or dy == 0:
                continue
            if dx == dy:
                concordant += 1
            else:
                discordant += 1
    n0 = n * (n - 1) // 2
    denom = math.sqrt(float(n0 - ties_x) * float(n0 - ties_y))
    if denom == 0.0:
        return 1.0
    return (concordant - discordant) / denom


@dataclass(frozen=True)
class LoopComparison:
    """Predicted vs observed reuse supply for one loop in one cell."""

    tail_pc: int
    #: Committed-from-buffer instructions the predictor expects.
    predicted_supplied: int
    #: Instructions the dynamic controller actually supplied (summed
    #: over every session's revoke event for this tail).
    dynamic_supplied: int
    #: The predictor's blocking verdict (None = expected to supply).
    blocked: Optional[str]
    #: Dynamic ``buffer_start`` / ``promote`` event counts for the tail.
    buffer_starts: int
    promotes: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary."""
        return {
            "tail_pc": f"{self.tail_pc:#x}",
            "predicted_supplied": self.predicted_supplied,
            "dynamic_supplied": self.dynamic_supplied,
            "blocked": self.blocked,
            "buffer_starts": self.buffer_starts,
            "promotes": self.promotes,
        }


@dataclass
class PredictionCheck:
    """Predicted vs dynamic reuse behaviour of one grid cell."""

    program: str
    iq_size: int
    engine: str
    #: Static prediction of the committed buffered fraction.
    predicted_fraction: float
    #: ``reuse_committed / committed`` from the finished run.
    dynamic_fraction: float
    predicted_committed: int
    dynamic_committed: int
    #: True when the predictor had to approximate (unknown trip count,
    #: indirect call, recursion); exactness claims are relaxed then.
    approximate: bool
    loops: List[LoopComparison] = field(default_factory=list)
    #: Static/dynamic bufferability contradictions (must be empty).
    contradictions: List[str] = field(default_factory=list)
    #: Concordance violations from the same run (must be empty).
    violations: List[ConcordanceViolation] = field(default_factory=list)

    @property
    def abs_error(self) -> float:
        """Absolute predicted-vs-dynamic buffered-fraction error."""
        return abs(self.predicted_fraction - self.dynamic_fraction)

    def ok(self, tolerance: float = 0.05) -> bool:
        """True when the cell meets every acceptance criterion."""
        return (self.abs_error <= tolerance
                and not self.contradictions
                and not self.violations)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary."""
        return {
            "program": self.program,
            "iq_size": self.iq_size,
            "engine": self.engine,
            "predicted_fraction": round(self.predicted_fraction, 6),
            "dynamic_fraction": round(self.dynamic_fraction, 6),
            "abs_error": round(self.abs_error, 6),
            "predicted_committed": self.predicted_committed,
            "dynamic_committed": self.dynamic_committed,
            "approximate": self.approximate,
            "loops": [loop.to_dict() for loop in self.loops],
            "contradictions": list(self.contradictions),
            "concordance_violations": [
                {"check": v.check, "cycle": v.cycle,
                 "tail_pc": (None if v.tail_pc is None
                             else f"{v.tail_pc:#x}"),
                 "message": v.message}
                for v in self.violations
            ],
        }


def _contradictions(prediction: "PredictionReport",
                    comparisons: List[LoopComparison]) -> List[str]:
    """Static/dynamic bufferability contradictions for one cell.

    These are one-sided *structural* claims that hold regardless of
    modelling error in the arithmetic: a ``too-large`` loop can never
    even start buffering, a structurally blocked loop can never be
    promoted, and (when the static instruction counts are exact) a loop
    predicted to supply must have been promoted at least once.
    """
    out: List[str] = []
    for cmp in comparisons:
        tag = f"loop {cmp.tail_pc:#x}"
        if cmp.blocked == BLOCK_TOO_LARGE and cmp.buffer_starts:
            out.append(
                f"{tag}: statically too-large for the queue but the "
                f"dynamic detector started buffering it "
                f"{cmp.buffer_starts} time(s)")
        if cmp.blocked in _STRUCTURAL_BLOCKS and cmp.promotes:
            out.append(
                f"{tag}: statically blocked ({cmp.blocked}) but "
                f"dynamically promoted {cmp.promotes} time(s)")
        if cmp.blocked == BLOCK_TOO_LARGE and cmp.dynamic_supplied:
            out.append(
                f"{tag}: statically too-large but the controller "
                f"supplied {cmp.dynamic_supplied} instruction(s) from "
                f"its buffer")
        if (cmp.predicted_supplied > 0 and not prediction.approximate
                and not cmp.promotes):
            out.append(
                f"{tag}: predicted to supply {cmp.predicted_supplied} "
                f"instruction(s) but was never dynamically promoted")
    return out


def check_prediction(program: Program, config: MachineConfig,
                     engine: str = "object",
                     prediction: Optional[PredictionReport] = None,
                     max_cycles: Optional[int] = None) -> PredictionCheck:
    """Compare the static predictor against one dynamic run.

    Runs ``program`` on the selected engine (reuse forced on, no probes
    so the array core stays on its fast path), then lines the
    :class:`~repro.analysis.predict.PredictionReport` up against the
    run's commit counters and controller event log.  ``prediction`` may
    be passed in to reuse a report computed by
    :func:`~repro.analysis.predict.predict_grid`.
    """
    from repro.sim.simulator import run_timing

    if not config.reuse_enabled:
        config = config.replace(reuse_enabled=True)
    if prediction is None:
        prediction = predict_reuse(program, config.iq_size)
    record, pipeline = run_timing(program, config, max_cycles=max_cycles,
                                  keep_pipeline=True, engine=engine)
    events = list(pipeline.controller.events)
    static = loops_by_tail(analyze_loops(build_cfg(program)))
    violations, _counts = _concordance(events, static, config.iq_size)

    supplied_by_tail: Dict[int, int] = {}
    starts_by_tail: Dict[int, int] = {}
    promotes_by_tail: Dict[int, int] = {}
    for event in events:
        if event.tail_pc is None:
            continue
        if event.kind == "buffer_start":
            starts_by_tail[event.tail_pc] = \
                starts_by_tail.get(event.tail_pc, 0) + 1
        elif event.kind == "promote":
            promotes_by_tail[event.tail_pc] = \
                promotes_by_tail.get(event.tail_pc, 0) + 1
        elif event.kind == "revoke":
            supplied_by_tail[event.tail_pc] = \
                supplied_by_tail.get(event.tail_pc, 0) + event.supplied

    comparisons = [
        LoopComparison(
            tail_pc=loop.tail_pc,
            predicted_supplied=loop.predicted_supplied,
            dynamic_supplied=supplied_by_tail.get(loop.tail_pc, 0),
            blocked=loop.blocked,
            buffer_starts=starts_by_tail.get(loop.tail_pc, 0),
            promotes=promotes_by_tail.get(loop.tail_pc, 0),
        )
        for loop in prediction.loops
    ]
    committed = int(record["committed"])
    reuse_committed = int(record["reuse_committed"])
    dynamic_fraction = reuse_committed / committed if committed else 0.0
    return PredictionCheck(
        program=program.name,
        iq_size=config.iq_size,
        engine=engine,
        predicted_fraction=prediction.predicted_fraction,
        dynamic_fraction=dynamic_fraction,
        predicted_committed=prediction.predicted_committed,
        dynamic_committed=committed,
        approximate=prediction.approximate,
        loops=comparisons,
        contradictions=_contradictions(prediction, comparisons),
        violations=violations,
    )


@dataclass
class HarnessResult:
    """Aggregated outcome of a prediction-error grid sweep."""

    cells: List[PredictionCheck]
    #: Max tolerated per-cell absolute buffered-fraction error.
    fraction_tolerance: float = 0.05
    #: Min pooled Kendall tau-b over per-loop supply rankings.
    tau_threshold: float = 0.8

    @property
    def max_abs_error(self) -> float:
        """Worst per-cell absolute buffered-fraction error."""
        return max((cell.abs_error for cell in self.cells), default=0.0)

    @property
    def tau(self) -> float:
        """Pooled Kendall tau-b over every loop in every cell."""
        pairs = [(float(cmp.predicted_supplied), float(cmp.dynamic_supplied))
                 for cell in self.cells for cmp in cell.loops]
        return kendall_tau(pairs)

    @property
    def contradiction_count(self) -> int:
        """Total bufferability contradictions across the grid."""
        return sum(len(cell.contradictions) for cell in self.cells)

    @property
    def violation_count(self) -> int:
        """Total concordance violations across the grid."""
        return sum(len(cell.violations) for cell in self.cells)

    @property
    def ok(self) -> bool:
        """True when all three acceptance criteria hold."""
        return (self.max_abs_error <= self.fraction_tolerance
                and self.tau >= self.tau_threshold
                and self.contradiction_count == 0
                and self.violation_count == 0)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary."""
        return {
            "ok": self.ok,
            "cells": len(self.cells),
            "max_abs_error": round(self.max_abs_error, 6),
            "fraction_tolerance": self.fraction_tolerance,
            "kendall_tau": round(self.tau, 6),
            "tau_threshold": self.tau_threshold,
            "contradictions": self.contradiction_count,
            "concordance_violations": self.violation_count,
            "results": [cell.to_dict() for cell in self.cells],
        }


def prediction_harness(programs: Sequence[Program], config: MachineConfig,
                       iq_sizes: Sequence[int] = (32, 64, 96, 128),
                       engines: Sequence[str] = ("object", "array"),
                       fraction_tolerance: float = 0.05,
                       tau_threshold: float = 0.8,
                       max_cycles: Optional[int] = None) -> HarnessResult:
    """Sweep the prediction-error grid and aggregate acceptance criteria.

    Every ``program x iq_size x engine`` cell is one
    :func:`check_prediction` run; static predictions are shared across
    engines (and, via :func:`~repro.analysis.predict.predict_grid`,
    reuse one CFG/interval analysis across queue sizes).  ``config``
    supplies every machine parameter except ``iq_size`` and
    ``reuse_enabled``, which the sweep owns.
    """
    cells: List[PredictionCheck] = []
    for program in programs:
        reports = dict(zip(iq_sizes, predict_grid(program, iq_sizes)))
        for iq_size in iq_sizes:
            cell_config = config.replace(iq_size=iq_size,
                                         reuse_enabled=True)
            for engine in engines:
                cells.append(check_prediction(
                    program, cell_config, engine=engine,
                    prediction=reports[iq_size], max_cycles=max_cycles))
    return HarnessResult(cells=cells,
                         fraction_tolerance=fraction_tolerance,
                         tau_threshold=tau_threshold)
