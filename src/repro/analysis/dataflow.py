"""Register dataflow over the unified logical register space.

Three analyses, all over the interprocedural supergraph view of a
:class:`~repro.analysis.cfg.ControlFlowGraph` (calls flow into their
callee, returns flow back to every return site):

* :func:`undefined_reads` -- forward *must-initialized* analysis.  At
  machine reset only ``$zero`` and ``$sp`` carry meaningful values; a
  read of any other register on some path with no prior write observes
  the register file's reset value (rule B005).
* :func:`resolve_static_stores` -- sparse constant tracking through
  ``lui``/``ori``/``addiu``/``addu``/``or`` so stores whose effective
  address is statically known can be checked against the text segment
  (rule B006).
* :func:`loop_footprint` -- def/use sets over a loop's body (callees
  inlined): the logical registers the paper's logical register list
  would capture for the loop, and therefore the LRL traffic one reuse
  pass implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import EDGE_CALL_RETURN, ControlFlowGraph
from repro.analysis.loops import StaticLoop
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import STACK_TOP
from repro.isa.registers import NUM_LOGICAL_REGS, REG_SP, REG_ZERO

#: Registers architecturally defined at program entry (reset state).
ENTRY_REGS = frozenset({REG_ZERO, REG_SP})

_ENTRY_MASK = sum(1 << reg for reg in ENTRY_REGS)
_ALL_MASK = (1 << NUM_LOGICAL_REGS) - 1
_WORD_MASK = 0xFFFFFFFF


# -- must-initialized analysis (B005) ----------------------------------------


def _must_init_transfer(block_insts: List[Instruction], mask: int,
                        reads: Optional[Set[Tuple[int, int]]]) -> int:
    """Apply one block; optionally collect uninitialized reads."""
    for inst in block_insts:
        if reads is not None:
            for reg in inst.srcs:
                if not (mask >> reg) & 1 and inst.pc is not None:
                    reads.add((inst.pc, reg))
        if inst.dest is not None:
            mask |= 1 << inst.dest
        if inst.is_call and inst.is_indirect_control:
            mask = _ALL_MASK          # unknown callee: assume it defines all
    return mask


def procedure_must_writes(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Per-procedure must-write summaries, ``entry_pc -> register mask``.

    A register is in a procedure's summary when *every* entry-to-return
    path writes it -- including transitively through direct calls; an
    indirect call counts as writing everything (the unknown callee
    assumption :func:`_must_init_transfer` already makes).  A procedure
    with no return block never returns, so its summary is vacuously the
    full mask.  Recursion is handled by starting optimistic (full mask)
    and iterating to the greatest fixpoint, which is exact for the
    terminating executions the analysis describes.
    """
    summaries: Dict[int, int] = {entry: _ALL_MASK
                                 for entry in cfg.procedures}
    changed = True
    while changed:
        changed = False
        for entry_pc, proc in cfg.procedures.items():
            new = _summary_of(cfg, entry_pc, proc.return_blocks, summaries)
            if new != summaries[entry_pc]:
                summaries[entry_pc] = new
                changed = True
    return summaries


def _summary_of(cfg: ControlFlowGraph, entry_pc: int,
                return_blocks: Tuple[int, ...],
                summaries: Dict[int, int]) -> int:
    """One procedure's must-write mask under the current summaries."""
    entry_index = cfg.program.index_of(entry_pc)
    if entry_index is None:
        return _ALL_MASK
    entry_block = cfg.block_at_index(entry_index).index
    in_state: Dict[int, int] = {entry_block: 0}
    worklist = [entry_block]
    while worklist:
        index = worklist.pop()
        block = cfg.blocks[index]
        out = _must_init_transfer(cfg.instructions(block),
                                  in_state[index], None)
        term = cfg.terminator(block)
        if term.is_call and term.target is not None:
            # the callee's guaranteed writes take effect on the
            # call-return edge; unknown callees already forced the full
            # mask inside the transfer
            out |= summaries.get(term.target, _ALL_MASK)
        for succ in block.successor_indices():
            if succ not in in_state:
                in_state[succ] = out
                worklist.append(succ)
            else:
                merged = in_state[succ] & out
                if merged != in_state[succ]:
                    in_state[succ] = merged
                    worklist.append(succ)
    result = _ALL_MASK      # no reachable return: vacuously everything
    for index in return_blocks:
        if index not in in_state:
            continue
        result &= _must_init_transfer(cfg.instructions(cfg.blocks[index]),
                                      in_state[index], None)
    return result


def _must_init_states(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Fixpoint block-entry masks of definitely-initialized registers.

    Interprocedural hybrid: a direct call flows its state both *into*
    the callee's entry (so reads inside the callee are checked under the
    meet of every call-site state) and *across* to the return site
    augmented with the callee's must-write summary.  Flowing the summary
    -- rather than routing the state through the callee's body and back
    out of its return blocks -- keeps one caller's initializations from
    being merged away by another caller's, the context-insensitivity
    false positive the summaries exist to remove.
    """
    summaries = procedure_must_writes(cfg)
    entry = cfg.entry_block.index
    in_state: Dict[int, int] = {entry: _ENTRY_MASK}
    worklist = [entry]
    while worklist:
        index = worklist.pop()
        block = cfg.blocks[index]
        out = _must_init_transfer(cfg.instructions(block),
                                  in_state[index], None)
        term = cfg.terminator(block)
        targets: List[Tuple[int, int]] = []
        if term.is_call and term.target is not None \
                and term.target in cfg.procedures:
            for succ in cfg.supergraph_successors(block):
                targets.append((succ, out))       # callee entry
            summary_out = out | summaries[term.target]
            for succ, kind in block.successors:
                if kind == EDGE_CALL_RETURN:
                    targets.append((succ, summary_out))
        elif term.is_return:
            targets = []          # caller side is covered by summaries
        else:
            targets = [(succ, out) for succ in block.successor_indices()]
        for succ, mask in targets:
            if succ not in in_state:
                in_state[succ] = mask
                worklist.append(succ)
            else:
                merged = in_state[succ] & mask
                if merged != in_state[succ]:
                    in_state[succ] = merged
                    worklist.append(succ)
    return in_state


def undefined_reads(cfg: ControlFlowGraph) -> List[Tuple[int, int]]:
    """``(pc, register)`` pairs read without a guaranteed prior write.

    Sorted by pc then register; unreachable blocks are skipped (rule
    B004 owns those).  ``$zero`` and ``$sp`` never appear -- they are
    defined by the reset state.
    """
    in_state = _must_init_states(cfg)
    found: Set[Tuple[int, int]] = set()
    for index, mask in in_state.items():
        _must_init_transfer(cfg.instructions(cfg.blocks[index]), mask, found)
    return sorted(found)


# -- constant tracking (B006) -------------------------------------------------


def _const_transfer(block_insts: List[Instruction],
                    state: Dict[int, int],
                    stores: Optional[Set[Tuple[int, int]]]) -> Dict[int, int]:
    """Apply one block to a register-constant map; collect store sites."""

    def read(reg: Optional[int]) -> Optional[int]:
        if reg is None:
            return None
        if reg == REG_ZERO:
            return 0
        return state.get(reg)

    state = dict(state)
    for inst in block_insts:
        op = inst.op
        if inst.is_store and stores is not None and inst.pc is not None:
            base = read(inst.rs)
            if base is not None:
                stores.add((inst.pc, (base + inst.imm) & _WORD_MASK))
        if inst.is_call and inst.is_indirect_control:
            state.clear()             # unknown callee clobbers everything
            continue
        dest = inst.dest
        if dest is None:
            continue
        value: Optional[int] = None
        if op is Opcode.LUI:
            value = (inst.imm & 0xFFFF) << 16
        elif op is Opcode.ORI:
            source = read(inst.rs)
            if source is not None:
                value = source | (inst.imm & 0xFFFF)
        elif op is Opcode.ADDIU:
            source = read(inst.rs)
            if source is not None:
                value = (source + inst.imm) & _WORD_MASK
        elif op is Opcode.ADDU:
            a, b = read(inst.rs), read(inst.rt)
            if a is not None and b is not None:
                value = (a + b) & _WORD_MASK
        elif op is Opcode.OR:
            a, b = read(inst.rs), read(inst.rt)
            if a is not None and b is not None:
                value = a | b
        if value is None:
            state.pop(dest, None)
        else:
            state[dest] = value
    return state


def _merge_consts(left: Dict[int, int],
                  right: Dict[int, int]) -> Dict[int, int]:
    return {reg: value for reg, value in left.items()
            if right.get(reg) == value}


def resolve_static_stores(cfg: ControlFlowGraph) -> List[Tuple[int, int]]:
    """``(pc, effective address)`` of stores with statically known bases.

    The constant lattice covers the address-forming idioms the assembler
    emits (``la`` = ``lui``+``ori``, pointer bumps via ``addiu``/``addu``).
    Sorted by pc; each store reports the addresses seen over all constant
    paths reaching it.
    """
    entry = cfg.entry_block.index
    in_state: Dict[int, Dict[int, int]] = {entry: {REG_SP: STACK_TOP}}
    worklist = [entry]
    iterations = 0
    limit = 64 * max(1, len(cfg.blocks)) ** 2
    while worklist and iterations < limit:
        iterations += 1
        index = worklist.pop()
        block = cfg.blocks[index]
        out = _const_transfer(cfg.instructions(block), in_state[index], None)
        for succ in cfg.supergraph_successors(block):
            if succ not in in_state:
                in_state[succ] = out
                worklist.append(succ)
            else:
                merged = _merge_consts(in_state[succ], out)
                if merged != in_state[succ]:
                    in_state[succ] = merged
                    worklist.append(succ)
    found: Set[Tuple[int, int]] = set()
    for index, state in in_state.items():
        _const_transfer(cfg.instructions(cfg.blocks[index]), state, found)
    return sorted(found)


# -- per-loop register footprints ---------------------------------------------


@dataclass(frozen=True)
class RegisterFootprint:
    """Def/use summary of one loop body (callees inlined)."""

    #: Logical registers read by the body.
    reads: FrozenSet[int]
    #: Logical registers written by the body.
    writes: FrozenSet[int]
    #: Registers read before any body write (loop-carried inputs), by a
    #: straight head-to-tail scan of the contiguous range.
    live_in: FrozenSet[int]

    @property
    def registers(self) -> FrozenSet[int]:
        """Every register the LRL would record for this loop."""
        return self.reads | self.writes

    @property
    def footprint(self) -> int:
        """Distinct logical registers touched."""
        return len(self.registers)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (stable ordering)."""
        return {
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "live_in": sorted(self.live_in),
            "footprint": self.footprint,
        }


def _loop_instructions(cfg: ControlFlowGraph,
                       loop: StaticLoop) -> List[Instruction]:
    """The loop's contiguous range plus every reachable callee body."""
    program = cfg.program
    instructions = [inst for inst in program.instructions
                    if inst.pc is not None
                    and loop.head_pc <= inst.pc <= loop.tail_pc]
    seen: Set[int] = set()
    worklist: List[int] = []
    for pc in loop.call_sites:
        index = program.index_of(pc)
        if index is None:
            continue
        target = program.instructions[index].target
        if target is not None:
            worklist.append(target)
    while worklist:
        entry_pc = worklist.pop()
        if entry_pc in seen:
            continue
        seen.add(entry_pc)
        proc = cfg.procedures.get(entry_pc)
        if proc is None:
            continue
        for block_index in proc.blocks:
            instructions.extend(cfg.instructions(cfg.blocks[block_index]))
        for site in proc.call_sites:
            if site.target is not None and site.target not in seen:
                worklist.append(site.target)
    return instructions


def loop_footprint(cfg: ControlFlowGraph,
                   loop: StaticLoop) -> RegisterFootprint:
    """Def/use analysis over one loop body.

    ``$zero`` is excluded (reads are constant, writes are discarded, and
    the rename stage never tracks it).
    """
    reads: Set[int] = set()
    writes: Set[int] = set()
    live_in: Set[int] = set()
    for inst in _loop_instructions(cfg, loop):
        for reg in inst.srcs:
            if reg == REG_ZERO:
                continue
            reads.add(reg)
            if reg not in writes:
                live_in.add(reg)
        if inst.dest is not None:
            writes.add(inst.dest)
    return RegisterFootprint(reads=frozenset(reads),
                             writes=frozenset(writes),
                             live_in=frozenset(live_in))
