"""Bufferability lint rules over assembled programs.

The rule set encodes the structural preconditions of the paper's
reuse-capable issue queue as static checks:

=====  ========================  ========  =====================================
id     name                      severity  fires when
=====  ========================  ========  =====================================
B001   loop-fits-iq              note      a loop candidate cannot be captured
                                           at the configured issue-queue size
                                           (distance too large, or even the
                                           shortest iteration overflows)
B002   inner-loop-would-abort    note      a capturable loop contains another
                                           loop candidate; detecting the inner
                                           loop revokes buffering (NBLT cause
                                           "inner loop")
B003   call-depth-exceeds-limit  warning   a loop's static call chain exceeds
                                           the return-address-stack depth (or
                                           is unbounded), so returns inside
                                           the loop will mispredict
B004   unreachable-block         warning   a basic block no path from the
                                           entry point reaches
B005   undefined-register-read   error     a register is read on some path
                                           with no prior write (only ``$zero``
                                           and ``$sp`` are defined at reset)
B006   store-to-text-segment     error     a store's statically resolved
                                           address lands inside the text
                                           segment (self-modifying code; the
                                           pipeline fetches stale text)
B007   trip-count-too-low        note      a capturable loop's static trip
                                           count is too low to reach reuse
                                           mode; every entry pays the
                                           buffering energy for zero supplies
B008   ineffectual-in-candidate  note      a statically ineffectual
                                           instruction (no-op move, dead
                                           write, silent store) sits inside a
                                           reuse candidate and is replayed
                                           every buffered iteration
B009   may-alias-store-revoke    warning   a store inside a reuse candidate
                                           may write the text segment (the
                                           address interval overlaps it or is
                                           unknown), which would leave stale
                                           buffered copies
B010   negative-reuse-benefit    warning   the static predictor expects the
                                           loop's buffering overhead to
                                           exceed its reuse savings at the
                                           configured queue size
=====  ========================  ========  =====================================

:func:`run_lint` produces a :class:`LintReport` with deterministic
ordering, renderable as text, JSON or SARIF 2.1.0.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.absint import (
    IntervalAnalysis,
    find_ineffectual,
    infer_trip_counts,
    memory_refs,
)
from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow import (
    loop_footprint,
    resolve_static_stores,
    undefined_reads,
)
from repro.analysis.loops import (
    CLASS_BUFFERABLE,
    CLASS_OVERFLOW,
    CLASS_TOO_LARGE,
    StaticLoop,
    analyze_loops,
)
from repro.arch.config import MachineConfig
from repro.isa.program import Program
from repro.isa.registers import reg_name


class Severity(enum.IntEnum):
    """Finding severity; comparable, so ``--fail-on`` is a threshold."""

    NOTE = 1
    WARNING = 2
    ERROR = 3

    @property
    def label(self) -> str:
        """Lower-case name (also the SARIF ``level``)."""
        return self.name.lower()


_SEVERITY_BY_LABEL = {sev.label: sev for sev in Severity}


def parse_severity(label: str) -> Severity:
    """Parse a ``--fail-on`` threshold label."""
    try:
        return _SEVERITY_BY_LABEL[label.lower()]
    except KeyError:
        raise ValueError(f"unknown severity: {label!r}") from None


@dataclass(frozen=True)
class RuleSpec:
    """Identity and defaults of one lint rule."""

    #: Stable identifier (``B001`` .. ``B006``).
    id: str
    #: Short kebab-case name.
    name: str
    #: Severity every finding of this rule carries.
    severity: Severity
    #: One-line description (also the SARIF rule description).
    description: str


#: The rule catalog, keyed by rule id.
RULES: Dict[str, RuleSpec] = {
    spec.id: spec for spec in (
        RuleSpec("B001", "loop-fits-iq", Severity.NOTE,
                 "A backward-branch loop cannot be captured at the "
                 "configured issue-queue size."),
        RuleSpec("B002", "inner-loop-would-abort", Severity.NOTE,
                 "A capturable loop contains another loop candidate; "
                 "detecting the inner loop revokes buffering."),
        RuleSpec("B003", "call-depth-exceeds-limit", Severity.WARNING,
                 "A loop's static call chain exceeds the return address "
                 "stack depth, so returns will mispredict."),
        RuleSpec("B004", "unreachable-block", Severity.WARNING,
                 "A basic block is unreachable from the entry point."),
        RuleSpec("B005", "undefined-register-read", Severity.ERROR,
                 "A register is read before any write on some path."),
        RuleSpec("B006", "store-to-text-segment", Severity.ERROR,
                 "A store's statically resolved address falls inside "
                 "the text segment."),
        RuleSpec("B007", "trip-count-too-low", Severity.NOTE,
                 "A capturable loop's trip count is too low to reach "
                 "reuse mode; buffering energy is wasted every entry."),
        RuleSpec("B008", "ineffectual-in-candidate", Severity.NOTE,
                 "A statically ineffectual instruction inside a reuse "
                 "candidate is replayed every buffered iteration."),
        RuleSpec("B009", "may-alias-store-revoke", Severity.WARNING,
                 "A store inside a reuse candidate may write the text "
                 "segment, leaving stale buffered copies."),
        RuleSpec("B010", "negative-reuse-benefit", Severity.WARNING,
                 "The static predictor expects buffering overhead to "
                 "exceed reuse savings for this loop."),
    )
}


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source span."""

    #: Rule id (a key of :data:`RULES`).
    rule: str
    #: Human-readable description of this specific violation.
    message: str
    #: First byte address of the offending span (None = whole program).
    pc: Optional[int] = None
    #: Last byte address of the span, inclusive (None = single address).
    end_pc: Optional[int] = None
    #: Suggested remediation.
    fix: Optional[str] = None
    #: Rule-specific structured details (JSON-ready values only).
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def severity(self) -> Severity:
        """The rule's severity."""
        return RULES[self.rule].severity

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable keys, hex addresses)."""
        return {
            "rule": self.rule,
            "name": RULES[self.rule].name,
            "severity": self.severity.label,
            "message": self.message,
            "pc": None if self.pc is None else f"{self.pc:#x}",
            "end_pc": None if self.end_pc is None else f"{self.end_pc:#x}",
            "fix": self.fix,
            "data": self.data,
        }


@dataclass
class LintReport:
    """All findings and loop summaries for one program at one IQ size."""

    #: Program name.
    program: str
    #: Issue-queue size the loop rules were evaluated at.
    iq_size: int
    #: Return-address-stack depth used by B003.
    ras_size: int
    #: Findings, sorted by (pc, rule).
    findings: List[Finding]
    #: Per-loop static structure with bufferability verdicts.
    loops: List[Dict[str, object]]
    #: Text-segment base address (for pc -> listing-line mapping).
    text_base: int = 0x00400000

    def count(self, severity: Severity) -> int:
        """Number of findings at exactly ``severity``."""
        return sum(1 for f in self.findings if f.severity is severity)

    def worst(self) -> Optional[Severity]:
        """The most severe finding, or None when the report is clean."""
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    def fails(self, threshold: Severity) -> bool:
        """True when any finding is at or above ``threshold``."""
        worst = self.worst()
        return worst is not None and worst >= threshold

    # -- renderers -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the golden-file format)."""
        return {
            "program": self.program,
            "iq_size": self.iq_size,
            "ras_size": self.ras_size,
            "counts": {sev.label: self.count(sev) for sev in Severity},
            "findings": [f.to_dict() for f in self.findings],
            "loops": self.loops,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` (trailing newline included)."""
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=False) + "\n"

    def to_sarif(self) -> Dict[str, object]:
        """A minimal SARIF 2.1.0 log with one run."""
        artifact = f"{self.program}.s"
        results = []
        for finding in self.findings:
            result: Dict[str, object] = {
                "ruleId": finding.rule,
                "level": finding.severity.label,
                "message": {"text": finding.message},
            }
            if finding.pc is not None:
                region: Dict[str, object] = {
                    "startLine": self._line_of(finding.pc)}
                if finding.end_pc is not None:
                    region["endLine"] = self._line_of(finding.end_pc)
                result["locations"] = [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": artifact},
                        "region": region,
                    }
                }]
            if finding.fix is not None:
                result["fixes"] = [
                    {"description": {"text": finding.fix}}]
            results.append(result)
        return {
            "version": "2.1.0",
            "$schema": ("https://json.schemastore.org/sarif-2.1.0.json"),
            "runs": [{
                "tool": {"driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/docs/analysis.md",
                    "rules": [
                        {
                            "id": spec.id,
                            "name": spec.name,
                            "shortDescription": {"text": spec.description},
                            "defaultConfiguration": {
                                "level": spec.severity.label},
                        }
                        for spec in sorted(RULES.values(),
                                           key=lambda s: s.id)
                    ],
                }},
                "results": results,
            }],
        }

    def render_text(self) -> str:
        """Human-readable report."""
        lines = [f"{self.program}: iq={self.iq_size} "
                 f"loops={len(self.loops)} findings={len(self.findings)}"]
        for finding in self.findings:
            where = "" if finding.pc is None else f" @ {finding.pc:#x}"
            if finding.end_pc is not None:
                where += f"..{finding.end_pc:#x}"
            lines.append(f"  {finding.rule} {finding.severity.label}"
                         f"{where}: {finding.message}")
            if finding.fix:
                lines.append(f"       fix: {finding.fix}")
        for loop in self.loops:
            lines.append(
                f"  loop tail={loop['tail_pc']} size={loop['size']} "
                f"depth={loop['depth']} class={loop['class']}")
        return "\n".join(lines)

    def _line_of(self, pc: int) -> int:
        """1-based instruction index standing in for a source line."""
        return (pc - self.text_base) // 4 + 1


# -- rule evaluation ----------------------------------------------------------


def _loop_rules(cfg: ControlFlowGraph, loops: List[StaticLoop],
                config: MachineConfig) -> List[Finding]:
    iq = config.iq_size
    findings: List[Finding] = []
    for loop in loops:
        verdict = loop.classify(iq)
        span = dict(pc=loop.head_pc, end_pc=loop.tail_pc)
        if verdict == CLASS_TOO_LARGE:
            findings.append(Finding(
                rule="B001",
                message=(f"loop at {loop.tail_pc:#x} spans {loop.size} "
                         f"instructions and cannot fit a {iq}-entry "
                         f"issue queue"),
                fix=("shrink the loop body or split it so the backward "
                     "distance fits the issue queue"),
                data={"size": loop.size, "iq_size": iq,
                      "class": verdict}, **span))
        elif verdict == CLASS_OVERFLOW:
            findings.append(Finding(
                rule="B001",
                message=(f"loop at {loop.tail_pc:#x} fits the queue but "
                         f"its shortest iteration decodes "
                         f"{loop.min_iteration_length} instructions "
                         f"(> {iq}); buffering always aborts"),
                fix="outline the loop body calls or reduce the iteration "
                    "length",
                data={"size": loop.size, "iq_size": iq,
                      "min_iteration_length": loop.min_iteration_length,
                      "class": verdict}, **span))
        if loop.fits(iq) and loop.inner_tail_pcs:
            inner = ", ".join(f"{pc:#x}" for pc in loop.inner_tail_pcs)
            findings.append(Finding(
                rule="B002",
                message=(f"loop at {loop.tail_pc:#x} contains inner loop "
                         f"candidate(s) at {inner}; buffering the outer "
                         f"loop aborts when an inner loop is detected"),
                fix="only the innermost loop can be reused; consider "
                    "unrolling the inner loop if outer reuse matters",
                data={"inner_tail_pcs":
                      [f"{pc:#x}" for pc in loop.inner_tail_pcs]}, **span))
        if loop.call_sites and (loop.max_call_depth is None
                                or loop.max_call_depth > config.ras_size):
            depth = ("unbounded" if loop.max_call_depth is None
                     else str(loop.max_call_depth))
            findings.append(Finding(
                rule="B003",
                message=(f"loop at {loop.tail_pc:#x} reaches call depth "
                         f"{depth}, exceeding the {config.ras_size}-entry "
                         f"return address stack"),
                fix="flatten the call chain below the RAS depth to keep "
                    "return prediction accurate",
                data={"max_call_depth": loop.max_call_depth,
                      "ras_size": config.ras_size}, **span))
    return findings


def _block_rules(cfg: ControlFlowGraph) -> List[Finding]:
    findings: List[Finding] = []
    program = cfg.program
    for block in cfg.unreachable_blocks():
        first = program.instructions[block.start]
        last = program.instructions[block.end - 1]
        findings.append(Finding(
            rule="B004",
            message=(f"block #{block.index} "
                     f"({len(block)} instruction(s)) is unreachable "
                     f"from the entry point"),
            pc=first.pc, end_pc=last.pc,
            fix="delete the dead code or add a branch reaching it",
            data={"block": block.index,
                  "instructions": len(block)}))
    return findings


def _dataflow_rules(cfg: ControlFlowGraph) -> List[Finding]:
    findings: List[Finding] = []
    program = cfg.program
    for pc, reg in undefined_reads(cfg):
        findings.append(Finding(
            rule="B005",
            message=(f"register {reg_name(reg)} is read at {pc:#x} "
                     f"but never written on some path from the entry "
                     f"point"),
            pc=pc,
            fix=f"initialize {reg_name(reg)} before the read",
            data={"register": reg, "register_name": reg_name(reg)}))
    text_end = program.text_end
    for pc, addr in resolve_static_stores(cfg):
        if program.text_base <= addr < text_end:
            findings.append(Finding(
                rule="B006",
                message=(f"store at {pc:#x} writes address {addr:#x} "
                         f"inside the text segment"),
                pc=pc,
                fix="point the store at the data segment or the stack",
                data={"address": f"{addr:#x}"}))
    return findings


def _absint_rules(cfg: ControlFlowGraph, loops: List[StaticLoop],
                  config: MachineConfig) -> List[Finding]:
    """Rules backed by the abstract-interpretation layer (B007-B010)."""
    from repro.analysis.predict import BLOCK_SHORT_TRIP, predict_reuse

    iq = config.iq_size
    findings: List[Finding] = []
    analysis = IntervalAnalysis(cfg)
    trip_counts = infer_trip_counts(cfg, loops, analysis)
    prediction = predict_reuse(cfg.program, iq, cfg=cfg, loops=loops,
                               trip_counts=trip_counts, analysis=analysis)
    for loop, pred in zip(loops, prediction.loops):
        span = dict(pc=loop.head_pc, end_pc=loop.tail_pc)
        if pred.blocked == BLOCK_SHORT_TRIP:
            trips = pred.trip.exact
            findings.append(Finding(
                rule="B007",
                message=(f"loop at {loop.tail_pc:#x} iterates {trips} "
                         f"time(s); buffering captures every iteration "
                         f"before promotion, so reuse never engages and "
                         f"the capture energy is wasted each of the "
                         f"{pred.sessions} predicted entries"),
                fix="unroll or lengthen the loop so more than "
                    "floor(iq/iteration) + 1 iterations run per entry",
                data={"trips": trips, "iq_size": iq,
                      "iteration_length": pred.iteration_length,
                      "sessions": pred.sessions}, **span))
        elif pred.predicted_supplied > 0 and pred.energy_delta > 0:
            findings.append(Finding(
                rule="B010",
                message=(f"loop at {loop.tail_pc:#x} is predicted to "
                         f"supply {pred.predicted_supplied} instructions "
                         f"but still cost "
                         f"{pred.energy_delta:.0f} pJ net: the per-entry "
                         f"capture overhead exceeds the reuse savings"),
                fix="increase the trip count per entry or disable reuse "
                    "for this queue size",
                data={"predicted_supplied": pred.predicted_supplied,
                      "energy_delta": round(pred.energy_delta, 3),
                      "iq_size": iq}, **span))
    candidates = [loop for loop in loops if loop.fits(iq)]

    def innermost(pc: int) -> Optional[StaticLoop]:
        owners = [loop for loop in candidates
                  if loop.head_pc <= pc <= loop.tail_pc]
        if not owners:
            return None
        return max(owners, key=lambda loop: loop.depth)

    for item in find_ineffectual(cfg):
        owner = innermost(item.pc)
        if owner is None:
            continue
        findings.append(Finding(
            rule="B008",
            message=(f"{item.kind} at {item.pc:#x} inside the reuse "
                     f"candidate at {owner.tail_pc:#x}: {item.message}; "
                     f"the wasted slot is replayed every buffered "
                     f"iteration"),
            pc=item.pc,
            fix="remove the ineffectual instruction to shrink the "
                "buffered loop body",
            data={"kind": item.kind,
                  "loop_tail_pc": f"{owner.tail_pc:#x}"}))
    text_base, text_end = cfg.program.text_base, cfg.program.text_end
    for ref in memory_refs(cfg, analysis):
        if not ref.is_store:
            continue
        owner = innermost(ref.pc)
        if owner is None:
            continue
        if ref.lo is None or ref.hi is None:
            overlaps, definite = True, False
        else:
            overlaps = ref.lo < text_end and ref.hi >= text_base
            definite = ref.lo >= text_base and ref.hi < text_end
        if overlaps and not definite:   # definite hits are B006 errors
            where = ("unknown" if ref.lo is None or ref.hi is None
                     else f"interval [{ref.lo:#x}, {ref.hi:#x}]")
            findings.append(Finding(
                rule="B009",
                message=(f"store at {ref.pc:#x} inside the reuse "
                         f"candidate at {owner.tail_pc:#x} may write the "
                         f"text segment (address {where}); a hit would "
                         f"leave stale buffered copies"),
                pc=ref.pc,
                fix="derive the store address from a data-segment base "
                    "the analysis can bound",
                data={"region": ref.region,
                      "lo": None if ref.lo is None else f"{ref.lo:#x}",
                      "hi": None if ref.hi is None else f"{ref.hi:#x}",
                      "loop_tail_pc": f"{owner.tail_pc:#x}"}))
    return findings


def _loop_summaries(cfg: ControlFlowGraph, loops: List[StaticLoop],
                    config: MachineConfig) -> List[Dict[str, object]]:
    summaries = []
    for loop in loops:
        entry = loop.to_dict()
        entry["class"] = loop.classify(config.iq_size)
        entry["hazards"] = sorted(loop.hazards(config.iq_size))
        entry["lrl"] = loop_footprint(cfg, loop).to_dict()
        summaries.append(entry)
    return summaries


def run_lint(program: Program,
             config: Optional[MachineConfig] = None) -> LintReport:
    """Evaluate every rule over ``program`` at ``config``'s queue size."""
    if config is None:
        config = MachineConfig()
    cfg = build_cfg(program)
    loops = analyze_loops(cfg)
    findings: List[Finding] = []
    findings.extend(_loop_rules(cfg, loops, config))
    findings.extend(_block_rules(cfg))
    findings.extend(_dataflow_rules(cfg))
    findings.extend(_absint_rules(cfg, loops, config))
    findings.sort(key=lambda f: (f.pc if f.pc is not None else -1, f.rule))
    return LintReport(
        program=program.name,
        iq_size=config.iq_size,
        ras_size=config.ras_size,
        findings=findings,
        loops=_loop_summaries(cfg, loops, config),
        text_base=program.text_base,
    )


def bufferable_loops(report: LintReport) -> List[Dict[str, object]]:
    """The report's loops classified bufferable (convenience for tests)."""
    return [loop for loop in report.loops
            if loop["class"] == CLASS_BUFFERABLE]
